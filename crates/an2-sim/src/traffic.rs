//! Workload generators for the switch simulations.
//!
//! The paper's evaluation (§3.5) uses three families of workloads, all
//! reproduced here:
//!
//! * **Uniform** i.i.d. Bernoulli arrivals — Figures 3 and 5, Table 1.
//! * **Client–server** — Figure 4: four server ports, with client–client
//!   connections carrying "only 5% of the traffic of client-server or
//!   server-server connections", offered load measured on a server link.
//! * **Periodic** — Figure 1 / Li's stationary blocking: every input emits
//!   the same cyclic destination sequence, which drives FIFO queueing to
//!   single-link aggregate throughput while leaving non-FIFO schedulers at
//!   full utilization.
//!
//! All sources respect the physical constraint that an input link delivers
//! at most one cell per slot.

use crate::cell::Arrival;
use an2_sched::rng::{SelectRng, Xoshiro256};
use an2_sched::{InputPort, OutputPort};

/// A per-slot arrival process for an `n`-port switch.
///
/// Implementations must emit at most one arrival per input per slot.
pub trait Traffic {
    /// The switch radix this source feeds.
    fn n(&self) -> usize;

    /// Appends the arrivals for `slot` to `out` (which the caller clears).
    fn arrivals(&mut self, slot: u64, out: &mut Vec<Arrival>);

    /// A short label for reports.
    fn name(&self) -> &'static str;
}

impl<T: Traffic + ?Sized> Traffic for Box<T> {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn arrivals(&mut self, slot: u64, out: &mut Vec<Arrival>) {
        (**self).arrivals(slot, out)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Bernoulli arrivals driven by an explicit rate matrix.
///
/// `rate[i][j]` is the probability that a cell from input `i` to output `j`
/// arrives in a given slot. Each input draws one Bernoulli trial per slot
/// with its row sum as success probability, then picks the destination in
/// proportion to its row — so row sums must not exceed 1.
///
/// This is the general form; [`RateMatrixTraffic::uniform`] and
/// [`RateMatrixTraffic::client_server`] build the paper's two workloads.
#[derive(Clone, Debug)]
pub struct RateMatrixTraffic {
    n: usize,
    name: &'static str,
    /// Row-major arrival probability per pair.
    rate: Vec<Vec<f64>>,
    /// Row sums (arrival probability per input).
    row_sum: Vec<f64>,
    /// Cumulative row distributions for destination sampling.
    row_cum: Vec<Vec<f64>>,
    rng: Xoshiro256,
}

impl RateMatrixTraffic {
    /// Creates a source from an explicit rate matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `n`×`n` with `n >= 1`, if any entry is
    /// negative or non-finite, or if a row sum exceeds 1 (beyond a small
    /// tolerance) — an input link cannot carry more than one cell per slot.
    pub fn new(rate: Vec<Vec<f64>>, seed: u64) -> Self {
        Self::with_name(rate, seed, "rate-matrix")
    }

    fn with_name(rate: Vec<Vec<f64>>, seed: u64, name: &'static str) -> Self {
        let n = rate.len();
        assert!(n >= 1, "rate matrix must be non-empty");
        assert!(
            rate.iter().all(|r| r.len() == n),
            "rate matrix must be square"
        );
        assert!(
            rate.iter()
                .flatten()
                .all(|&p| p.is_finite() && p >= 0.0),
            "arrival rates must be finite and non-negative"
        );
        let row_sum: Vec<f64> = rate.iter().map(|r| r.iter().sum()).collect();
        assert!(
            row_sum.iter().all(|&s| s <= 1.0 + 1e-9),
            "an input link cannot exceed one cell per slot (row sum > 1)"
        );
        let row_cum = rate
            .iter()
            .map(|r| {
                let mut acc = 0.0;
                r.iter()
                    .map(|&p| {
                        acc += p;
                        acc
                    })
                    .collect()
            })
            .collect();
        Self {
            n,
            name,
            rate,
            row_sum,
            row_cum,
            rng: Xoshiro256::seed_from(seed),
        }
    }

    /// The uniform workload of Figures 3 and 5: every input offers `load`
    /// cells/slot, destinations uniform over all outputs.
    ///
    /// # Panics
    ///
    /// Panics if `load` is not in `[0, 1]` or `n` is 0.
    pub fn uniform(n: usize, load: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be in [0,1]");
        assert!(n >= 1, "switch must have at least one port");
        let per_pair = load / n as f64;
        Self::with_name(vec![vec![per_pair; n]; n], seed, "uniform")
    }

    /// The client–server workload of Figure 4.
    ///
    /// The first `servers` ports connect to servers, the rest to clients.
    /// Pair intensity is 1 when either endpoint is a server and `cc_ratio`
    /// (the paper uses 0.05) when both are clients, scaled so a **server
    /// link** carries `load` cells/slot. Client links then carry
    /// proportionally less, as in the paper ("offered load refers to the
    /// load on a server link").
    ///
    /// # Panics
    ///
    /// Panics if `servers` is 0 or `> n`, if `cc_ratio` is negative, or if
    /// `load` is not in `[0, 1]`.
    pub fn client_server(n: usize, servers: usize, load: f64, cc_ratio: f64, seed: u64) -> Self {
        assert!(servers >= 1 && servers <= n, "need 1..=n server ports");
        assert!(cc_ratio >= 0.0, "client-client ratio must be non-negative");
        assert!((0.0..=1.0).contains(&load), "load must be in [0,1]");
        let is_server = |p: usize| p < servers;
        let weight = |i: usize, j: usize| {
            if is_server(i) || is_server(j) {
                1.0
            } else {
                cc_ratio
            }
        };
        // A server row (= column, by symmetry) has total weight n; scale so
        // that equals `load`.
        let scale = load / n as f64;
        let rate = (0..n)
            .map(|i| (0..n).map(|j| weight(i, j) * scale).collect())
            .collect();
        Self::with_name(rate, seed, "client-server")
    }

    /// The offered arrival rate of input `i` (cells per slot).
    pub fn input_rate(&self, i: usize) -> f64 {
        assert!(i < self.n, "input {i} outside switch");
        self.row_sum[i]
    }

    /// The offered rate into output `j` (cells per slot).
    pub fn output_rate(&self, j: usize) -> f64 {
        assert!(j < self.n, "output {j} outside switch");
        self.rate.iter().map(|r| r[j]).sum()
    }
}

impl Traffic for RateMatrixTraffic {
    fn n(&self) -> usize {
        self.n
    }

    fn arrivals(&mut self, _slot: u64, out: &mut Vec<Arrival>) {
        for i in 0..self.n {
            let s = self.row_sum[i];
            if s <= 0.0 || !self.rng.bernoulli(s) {
                continue;
            }
            // Destination in proportion to the row.
            let u = self.rng.uniform_f64() * s;
            let j = self.row_cum[i].partition_point(|&c| c <= u).min(self.n - 1);
            out.push(Arrival::pair(
                self.n,
                InputPort::new(i),
                OutputPort::new(j),
            ));
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// The uniform workload of [`RateMatrixTraffic::uniform`] generated by
/// geometric skip-sampling: cost per slot is proportional to the number of
/// *arrivals* (`n · load`), not the number of ports.
///
/// Statistically identical to the rate-matrix form — each input fires an
/// i.i.d. Bernoulli(`load`) trial per slot and picks a destination
/// uniformly over all `n` outputs — but instead of running `n` trials, the
/// generator jumps straight to the next firing input with a geometric gap
/// draw (`floor(ln U / ln(1 − load))`, the inverse-CDF of the run length
/// of failures). At `n = 1024` and light load this turns a ~37 µs/slot
/// scan into well under a microsecond, which is what lets the batched
/// engine clear 100k slots/sec.
///
/// The stream is **not** draw-for-draw identical to
/// [`RateMatrixTraffic::uniform`] with the same seed (it consumes two
/// draws per arrival instead of `n` Bernoulli trials per slot), so the
/// narrow pinned-digest workloads keep using the rate-matrix form; this
/// source is for the wide (N > 256) scaling runs, which pin their own
/// digests. Runs are deterministic for a fixed seed on a given platform;
/// the gap draw uses `f64::ln`, so digests are only as portable as the
/// platform's libm rounding (the thread-count invariance checked in CI
/// compares runs on one machine and is unaffected).
#[derive(Clone, Debug)]
pub struct SparseUniformTraffic {
    n: usize,
    load: f64,
    /// `ln(1 − load)`; `None` when `load == 1` (every input fires).
    log_skip: Option<f64>,
    rng: Xoshiro256,
}

impl SparseUniformTraffic {
    /// Creates a uniform source offering `load` cells/slot per input.
    ///
    /// # Panics
    ///
    /// Panics if `load` is not in `[0, 1]` or `n` is 0.
    pub fn new(n: usize, load: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be in [0,1]");
        assert!(n >= 1, "switch must have at least one port");
        let log_skip = if load < 1.0 {
            Some((1.0 - load).ln())
        } else {
            None
        };
        Self {
            n,
            load,
            log_skip,
            rng: Xoshiro256::seed_from(seed),
        }
    }

    /// The number of inputs skipped before the next firing one: a draw
    /// from Geometric(`load`) counting failures, 0 when `load == 1`.
    fn gap(&mut self) -> usize {
        match self.log_skip {
            None => 0,
            Some(ls) => {
                // u ∈ [0, 1); ln(0) = −inf gives an infinite gap, which the
                // saturating cast turns into "no more arrivals this slot" —
                // the correct limit for a zero-probability draw.
                let u = self.rng.uniform_f64();
                (u.ln() / ls) as usize
            }
        }
    }
}

impl Traffic for SparseUniformTraffic {
    fn n(&self) -> usize {
        self.n
    }

    fn arrivals(&mut self, _slot: u64, out: &mut Vec<Arrival>) {
        if self.load <= 0.0 {
            return;
        }
        let n = self.n;
        let mut i = self.gap();
        while i < n {
            let j = self.rng.index(n);
            out.push(Arrival::pair(n, InputPort::new(i), OutputPort::new(j)));
            i += 1 + self.gap();
        }
    }

    fn name(&self) -> &'static str {
        "uniform-sparse"
    }
}

/// Li's periodic workload (Figure 1): every input emits the same periodic
/// destination sequence, in blocks — `block_len` cells for output 0, then
/// `block_len` cells for output 1, and so on, identically at every input.
///
/// Under FIFO queueing the heads chase the same output (*stationary
/// blocking* — aggregate throughput of roughly a single link), while the
/// queued work could keep every link busy: with random-access buffers the
/// backlog spans many outputs, so PIM restores full utilization. Blocks
/// must be long relative to `n` (≳ 32·n) for the collapse to be sustained;
/// with short blocks, round-robin service can accidentally pipeline the
/// heads into distinct blocks.
#[derive(Clone, Debug)]
pub struct PeriodicTraffic {
    n: usize,
    load: f64,
    block_len: usize,
    /// Cells generated so far at each input.
    counter: Vec<u64>,
    rng: Xoshiro256,
}

impl PeriodicTraffic {
    /// Creates the periodic source with the default block length of `n`
    /// cells per destination; at `load == 1.0` it is fully deterministic
    /// (one cell per input per slot).
    ///
    /// # Panics
    ///
    /// Panics if `load` is not in `[0, 1]` or `n` is 0.
    pub fn new(n: usize, load: f64, seed: u64) -> Self {
        Self::with_block_len(n, load, seed, n)
    }

    /// Creates the periodic source with an explicit block length.
    ///
    /// # Panics
    ///
    /// Panics if `load` is not in `[0, 1]`, `n` is 0, or `block_len` is 0.
    pub fn with_block_len(n: usize, load: f64, seed: u64, block_len: usize) -> Self {
        assert!(n >= 1, "switch must have at least one port");
        assert!((0.0..=1.0).contains(&load), "load must be in [0,1]");
        assert!(block_len >= 1, "block length must be at least 1");
        Self {
            n,
            load,
            block_len,
            counter: vec![0; n],
            rng: Xoshiro256::seed_from(seed),
        }
    }

    /// Cells per destination block.
    pub fn block_len(&self) -> usize {
        self.block_len
    }
}

impl Traffic for PeriodicTraffic {
    fn n(&self) -> usize {
        self.n
    }

    fn arrivals(&mut self, _slot: u64, out: &mut Vec<Arrival>) {
        for i in 0..self.n {
            if self.load < 1.0 && !self.rng.bernoulli(self.load) {
                continue;
            }
            let k = self.counter[i];
            self.counter[i] += 1;
            let j = (k / self.block_len as u64) as usize % self.n;
            out.push(Arrival::pair(
                self.n,
                InputPort::new(i),
                OutputPort::new(j),
            ));
        }
    }

    fn name(&self) -> &'static str {
        "periodic"
    }
}

/// Bursty on–off traffic: each input alternates geometrically distributed
/// ON bursts (one cell per slot, single destination per burst) and OFF
/// gaps. Models the §2.4 observation that "local area network traffic is
/// rarely uniform": bursts of consecutive cells to the same output are what
/// break replicated-banyan designs.
#[derive(Clone, Debug)]
pub struct BurstyTraffic {
    n: usize,
    /// Probability an OFF input turns ON in a slot.
    p_on: f64,
    /// Probability an ON input turns OFF after a slot (1/mean burst length).
    p_off: f64,
    /// Current burst destination per input; `None` while OFF.
    burst_dst: Vec<Option<usize>>,
    /// When set, every burst targets this output (hot-spot mode).
    hotspot: Option<usize>,
    rng: Xoshiro256,
}

impl BurstyTraffic {
    /// Creates a bursty source with mean burst length `mean_burst` slots
    /// and long-run per-input load `load`; burst destinations are uniform.
    ///
    /// The ON→OFF probability is `1/mean_burst`; the OFF→ON probability is
    /// chosen so the stationary ON fraction equals `load`.
    ///
    /// # Panics
    ///
    /// Panics if `load` is not in `(0, 1)`, or `mean_burst < 1`.
    pub fn new(n: usize, load: f64, mean_burst: f64, seed: u64) -> Self {
        assert!(n >= 1, "switch must have at least one port");
        assert!(load > 0.0 && load < 1.0, "load must be in (0,1)");
        assert!(mean_burst >= 1.0, "mean burst length must be >= 1 slot");
        let p_off = 1.0 / mean_burst;
        // Stationary ON fraction p_on/(p_on + p_off) = load.
        let p_on = p_off * load / (1.0 - load);
        Self {
            n,
            p_on: p_on.min(1.0),
            p_off,
            burst_dst: vec![None; n],
            hotspot: None,
            rng: Xoshiro256::seed_from(seed),
        }
    }

    /// Directs every burst at output `hot` — the §2.4 client–server burst
    /// pattern that overwhelms output-replicated fabrics.
    ///
    /// # Panics
    ///
    /// Panics if `hot >= n`.
    pub fn with_hotspot(mut self, hot: usize) -> Self {
        assert!(hot < self.n, "hotspot output {hot} outside switch");
        self.hotspot = Some(hot);
        self
    }
}

impl Traffic for BurstyTraffic {
    fn n(&self) -> usize {
        self.n
    }

    fn arrivals(&mut self, _slot: u64, out: &mut Vec<Arrival>) {
        for i in 0..self.n {
            match self.burst_dst[i] {
                None => {
                    if self.rng.bernoulli(self.p_on) {
                        let j = match self.hotspot {
                            Some(h) => h,
                            None => self.rng.index(self.n),
                        };
                        self.burst_dst[i] = Some(j);
                        out.push(Arrival::pair(
                            self.n,
                            InputPort::new(i),
                            OutputPort::new(j),
                        ));
                    }
                }
                Some(j) => {
                    out.push(Arrival::pair(
                        self.n,
                        InputPort::new(i),
                        OutputPort::new(j),
                    ));
                    if self.rng.bernoulli(self.p_off) {
                        self.burst_dst[i] = None;
                    }
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "bursty"
    }
}

/// Deterministic playback of an explicit arrival script, for tests.
#[derive(Clone, Debug)]
pub struct TraceTraffic {
    n: usize,
    /// Sorted by slot: (slot, arrival).
    script: Vec<(u64, Arrival)>,
    next: usize,
}

impl TraceTraffic {
    /// Creates a trace source from `(slot, input, output)` triples, which
    /// must be sorted by slot.
    ///
    /// # Panics
    ///
    /// Panics if the script is not sorted by slot, if any port is `>= n`,
    /// or if two cells share an input and slot.
    pub fn new(n: usize, script: impl IntoIterator<Item = (u64, usize, usize)>) -> Self {
        let script: Vec<(u64, Arrival)> = script
            .into_iter()
            .map(|(t, i, j)| {
                assert!(i < n && j < n, "scripted cell ({i},{j}) outside switch");
                (
                    t,
                    Arrival::pair(n, InputPort::new(i), OutputPort::new(j)),
                )
            })
            .collect();
        for w in script.windows(2) {
            assert!(w[0].0 <= w[1].0, "script must be sorted by slot");
            assert!(
                w[0].0 != w[1].0 || w[0].1.input != w[1].1.input,
                "two cells cannot arrive at one input in the same slot"
            );
        }
        Self { n, script, next: 0 }
    }

    /// Returns `true` once all scripted arrivals have been emitted.
    pub fn is_exhausted(&self) -> bool {
        self.next >= self.script.len()
    }
}

impl Traffic for TraceTraffic {
    fn n(&self) -> usize {
        self.n
    }

    fn arrivals(&mut self, slot: u64, out: &mut Vec<Arrival>) {
        while self.next < self.script.len() && self.script[self.next].0 == slot {
            out.push(self.script[self.next].1);
            self.next += 1;
        }
    }

    fn name(&self) -> &'static str {
        "trace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure_rates(t: &mut impl Traffic, slots: u64) -> (Vec<f64>, Vec<f64>) {
        let n = t.n();
        let mut in_cnt = vec![0u64; n];
        let mut out_cnt = vec![0u64; n];
        let mut buf = Vec::new();
        for s in 0..slots {
            buf.clear();
            t.arrivals(s, &mut buf);
            let mut seen = std::collections::HashSet::new();
            for a in &buf {
                assert!(seen.insert(a.input), "two arrivals at one input");
                in_cnt[a.input.index()] += 1;
                out_cnt[a.output.index()] += 1;
            }
        }
        (
            in_cnt.iter().map(|&c| c as f64 / slots as f64).collect(),
            out_cnt.iter().map(|&c| c as f64 / slots as f64).collect(),
        )
    }

    #[test]
    fn uniform_rates_match_load() {
        let mut t = RateMatrixTraffic::uniform(8, 0.6, 1);
        assert_eq!(t.name(), "uniform");
        let (inp, outp) = measure_rates(&mut t, 50_000);
        for r in inp {
            assert!((r - 0.6).abs() < 0.02, "input rate {r}");
        }
        for r in outp {
            assert!((r - 0.6).abs() < 0.03, "output rate {r}");
        }
    }

    #[test]
    fn uniform_rate_accessors() {
        let t = RateMatrixTraffic::uniform(4, 0.8, 0);
        for p in 0..4 {
            assert!((t.input_rate(p) - 0.8).abs() < 1e-9);
            assert!((t.output_rate(p) - 0.8).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_uniform_rates_match_load() {
        let mut t = SparseUniformTraffic::new(32, 0.3, 9);
        assert_eq!(t.name(), "uniform-sparse");
        let (inp, outp) = measure_rates(&mut t, 50_000);
        for r in inp {
            assert!((r - 0.3).abs() < 0.02, "input rate {r}");
        }
        for r in outp {
            assert!((r - 0.3).abs() < 0.03, "output rate {r}");
        }
    }

    #[test]
    fn sparse_uniform_edge_loads() {
        // load 0: silent. load 1: every input fires every slot.
        let mut buf = Vec::new();
        let mut zero = SparseUniformTraffic::new(16, 0.0, 4);
        zero.arrivals(0, &mut buf);
        assert!(buf.is_empty());
        let mut full = SparseUniformTraffic::new(16, 1.0, 4);
        for s in 0..32u64 {
            buf.clear();
            full.arrivals(s, &mut buf);
            assert_eq!(buf.len(), 16);
            for (i, a) in buf.iter().enumerate() {
                assert_eq!(a.input.index(), i);
            }
        }
    }

    #[test]
    fn sparse_uniform_is_deterministic_per_seed() {
        let runs: Vec<Vec<(usize, usize)>> = (0..2)
            .map(|_| {
                let mut t = SparseUniformTraffic::new(64, 0.2, 77);
                let mut all = Vec::new();
                let mut buf = Vec::new();
                for s in 0..200u64 {
                    buf.clear();
                    t.arrivals(s, &mut buf);
                    all.extend(buf.iter().map(|a| (a.input.index(), a.output.index())));
                }
                all
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert!(!runs[0].is_empty());
    }

    #[test]
    fn client_server_rates() {
        // 16 ports, 4 servers, load 0.8 on server links, cc ratio 0.05.
        let t = RateMatrixTraffic::client_server(16, 4, 0.8, 0.05, 2);
        // Server input rate = load.
        for s in 0..4 {
            assert!((t.input_rate(s) - 0.8).abs() < 1e-9);
            assert!((t.output_rate(s) - 0.8).abs() < 1e-9);
        }
        // Client rate = (4*1 + 12*0.05) * load/16 = 4.6/16 * 0.8 = 0.23.
        for c in 4..16 {
            assert!((t.input_rate(c) - 0.23).abs() < 1e-9, "{}", t.input_rate(c));
        }
        // Empirically too.
        let mut t = t;
        let (inp, _) = measure_rates(&mut t, 40_000);
        assert!((inp[0] - 0.8).abs() < 0.02);
        assert!((inp[10] - 0.23).abs() < 0.02);
    }

    #[test]
    fn client_server_full_load_is_feasible() {
        let t = RateMatrixTraffic::client_server(16, 4, 1.0, 0.05, 3);
        for p in 0..16 {
            assert!(t.input_rate(p) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn periodic_is_cyclic_and_deterministic_at_full_load() {
        // Block length 1: destination cycles every slot.
        let mut t = PeriodicTraffic::with_block_len(4, 1.0, 0, 1);
        assert_eq!(t.block_len(), 1);
        let mut buf = Vec::new();
        for s in 0..8u64 {
            buf.clear();
            t.arrivals(s, &mut buf);
            assert_eq!(buf.len(), 4);
            for a in &buf {
                assert_eq!(a.output.index(), (s as usize) % 4);
            }
        }
    }

    #[test]
    fn periodic_default_blocks_of_n() {
        let mut t = PeriodicTraffic::new(4, 1.0, 0);
        assert_eq!(t.block_len(), 4);
        let mut buf = Vec::new();
        for s in 0..16u64 {
            buf.clear();
            t.arrivals(s, &mut buf);
            for a in &buf {
                assert_eq!(a.output.index(), (s as usize / 4) % 4, "slot {s}");
            }
        }
    }

    #[test]
    fn periodic_partial_load_thins_arrivals() {
        let mut t = PeriodicTraffic::new(4, 0.5, 7);
        let (inp, _) = measure_rates(&mut t, 40_000);
        for r in inp {
            assert!((r - 0.5).abs() < 0.02, "rate {r}");
        }
    }

    #[test]
    fn bursty_long_run_load() {
        let mut t = BurstyTraffic::new(4, 0.4, 10.0, 5);
        let (inp, _) = measure_rates(&mut t, 200_000);
        for r in inp {
            assert!((r - 0.4).abs() < 0.05, "rate {r}");
        }
    }

    #[test]
    fn bursty_cells_within_burst_share_destination() {
        let mut t = BurstyTraffic::new(1, 0.5, 20.0, 9);
        let mut buf = Vec::new();
        let mut prev: Option<usize> = None;
        let mut switches = 0;
        let mut cells = 0;
        for s in 0..10_000u64 {
            buf.clear();
            t.arrivals(s, &mut buf);
            if let Some(a) = buf.first() {
                cells += 1;
                if prev == Some(a.output.index()) {
                } else if prev.is_some() {
                    switches += 1;
                }
                prev = Some(a.output.index());
            } else {
                prev = None;
            }
        }
        // With mean burst 20, destination switches are rare vs cells.
        assert!(cells > 1000);
        assert!(switches < cells / 5, "{switches} switches in {cells} cells");
    }

    #[test]
    fn bursty_hotspot_targets_one_output() {
        let mut t = BurstyTraffic::new(8, 0.3, 5.0, 11).with_hotspot(3);
        let (_, outp) = measure_rates(&mut t, 20_000);
        for (j, r) in outp.iter().enumerate() {
            if j == 3 {
                assert!(*r > 1.0, "hotspot rate {r}"); // 8 inputs * 0.3
            } else {
                assert_eq!(*r, 0.0);
            }
        }
    }

    #[test]
    fn trace_plays_back_in_order() {
        let mut t = TraceTraffic::new(4, [(0, 0, 1), (0, 1, 1), (2, 0, 3)]);
        let mut buf = Vec::new();
        t.arrivals(0, &mut buf);
        assert_eq!(buf.len(), 2);
        buf.clear();
        t.arrivals(1, &mut buf);
        assert!(buf.is_empty());
        assert!(!t.is_exhausted());
        t.arrivals(2, &mut buf);
        assert_eq!(buf.len(), 1);
        assert!(t.is_exhausted());
    }

    #[test]
    #[should_panic(expected = "sorted by slot")]
    fn unsorted_trace_panics() {
        let _ = TraceTraffic::new(4, [(2, 0, 1), (0, 0, 1)]);
    }

    #[test]
    #[should_panic(expected = "row sum > 1")]
    fn overloaded_rate_matrix_panics() {
        let _ = RateMatrixTraffic::new(vec![vec![0.6, 0.6], vec![0.0, 0.0]], 0);
    }

    #[test]
    #[should_panic(expected = "same slot")]
    fn duplicate_input_slot_trace_panics() {
        let _ = TraceTraffic::new(4, [(0, 0, 1), (0, 0, 2)]);
    }
}
