//! A switch with a k-replicated fabric and output buffers (§2.4/§3.1).
//!
//! "One \[approach\] is to expand the internal switch bandwidth so that it
//! can transmit k cells to an output in a single time slot ... Since only
//! one cell can depart from an output during each slot, buffers are
//! required at the outputs with this technique." Unlike the replicated
//! batcher-banyan switches the paper criticizes, this model keeps
//! random-access *input* buffers too and schedules with k-grant PIM, so
//! no cell is ever dropped; at `k = 1` it is the plain AN2 switch with an
//! extra (empty) output stage, and as `k → N` it converges to perfect
//! output queueing.

use crate::cell::{Arrival, Cell};
use crate::metrics::SwitchReport;
use crate::model::{validate_arrivals, ModelMetrics, SwitchModel};
use crate::voq::VoqBuffers;
use an2_sched::kgrant::KGrantPim;
use std::collections::VecDeque;

/// An input- and output-buffered switch with internal speedup `k`,
/// scheduled by k-grant parallel iterative matching.
///
/// # Examples
///
/// ```
/// use an2_sim::speedup_switch::SpeedupSwitch;
/// use an2_sim::model::SwitchModel;
/// use an2_sim::cell::Arrival;
/// use an2_sched::{InputPort, OutputPort};
///
/// let mut sw = SpeedupSwitch::new(4, 2, 4, 1);
/// // Three inputs burst at output 0; with k = 2 two cells cross the
/// // fabric immediately (one departs, one waits in the output queue).
/// let burst: Vec<Arrival> = (0..3)
///     .map(|i| Arrival::pair(4, InputPort::new(i), OutputPort::new(0)))
///     .collect();
/// sw.step(&burst);
/// assert_eq!(sw.queued(), 2); // 1 still at an input + 1 in the output queue
/// ```
#[derive(Clone, Debug)]
pub struct SpeedupSwitch {
    voq: VoqBuffers,
    scheduler: KGrantPim,
    output_queues: Vec<VecDeque<Cell>>,
    metrics: ModelMetrics,
}

impl SpeedupSwitch {
    /// Creates an `n`-port switch with fabric speedup `k`, scheduling with
    /// `iterations` iterations of k-grant PIM per slot.
    ///
    /// # Panics
    ///
    /// Panics if `n`, `k` or `iterations` is 0, or `n > MAX_PORTS`.
    pub fn new(n: usize, k: usize, iterations: usize, seed: u64) -> Self {
        Self {
            voq: VoqBuffers::new(n),
            scheduler: KGrantPim::new(n, k, iterations, seed),
            output_queues: vec![VecDeque::new(); n],
            metrics: ModelMetrics::new(n),
        }
    }

    /// The fabric replication factor.
    pub fn k(&self) -> usize {
        self.scheduler.k()
    }

    /// Cells currently waiting in output queues.
    pub fn output_queued(&self) -> usize {
        self.output_queues.iter().map(VecDeque::len).sum()
    }

    /// Cells rejected at admission (drop-tail under a finite VOQ capacity;
    /// always 0 with the default unbounded buffers). Part of the
    /// conservation ledger: offered = admitted arrivals + `drops()`.
    pub fn drops(&self) -> u64 {
        self.voq.drops()
    }
}

impl SwitchModel for SpeedupSwitch {
    fn n(&self) -> usize {
        self.voq.n()
    }

    fn name(&self) -> &'static str {
        "speedup"
    }

    fn step(&mut self, arrivals: &[Arrival]) {
        let slot = self.metrics.slot();
        validate_arrivals(self.n(), arrivals);
        for a in arrivals {
            if self.voq.push(a.into_cell(slot)).is_admitted() {
                self.metrics.on_arrival();
            }
        }
        // Up to k cells cross the fabric to each output...
        let requests = self.voq.requests();
        let mm = self.scheduler.schedule(requests);
        debug_assert!(mm.respects(requests));
        for (i, j) in mm.pairs() {
            let cell = self
                .voq
                .pop(i, j)
                .expect("scheduler contract: assigned pairs have queued cells");
            self.output_queues[j.index()].push_back(cell);
        }
        // ...and one cell leaves each output link.
        for q in &mut self.output_queues {
            if let Some(cell) = q.pop_front() {
                self.metrics.on_departure(&cell);
            }
        }
        let occ = self.queued();
        self.metrics.end_slot(occ);
    }

    fn queued(&self) -> usize {
        self.voq.len() + self.output_queued()
    }

    fn start_measurement(&mut self) {
        self.metrics.restart();
    }

    fn report(&self) -> SwitchReport {
        self.metrics.report(self.queued())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output_queued::OutputQueuedSwitch;
    use crate::sim::{simulate, SimConfig};
    use crate::traffic::{BurstyTraffic, RateMatrixTraffic};

    /// Conservation must be checked without warmup truncation (a warmup
    /// window leaves pre-window cells in the departure counts).
    const NO_WARMUP: SimConfig = SimConfig {
        warmup_slots: 0,
        measure_slots: 10_000,
    };

    #[test]
    fn conservation_holds() {
        let mut sw = SpeedupSwitch::new(8, 2, 4, 1);
        let mut t = RateMatrixTraffic::uniform(8, 0.9, 2);
        let r = simulate(&mut sw, &mut t, NO_WARMUP);
        assert_eq!(r.arrivals, r.departures + r.final_occupancy as u64);
        assert_eq!(sw.k(), 2);
        assert_eq!(sw.name(), "speedup");
    }

    #[test]
    fn speedup_reduces_delay_toward_output_queueing() {
        let n = 16;
        let load = 0.9;
        let cfg = SimConfig::quick();
        let delay = |k: usize| {
            let mut sw = SpeedupSwitch::new(n, k, 4, 3);
            let mut t = RateMatrixTraffic::uniform(n, load, 4);
            simulate(&mut sw, &mut t, cfg).delay.mean()
        };
        let mut oq = OutputQueuedSwitch::new(n);
        let mut t = RateMatrixTraffic::uniform(n, load, 4);
        let oq_delay = simulate(&mut oq, &mut t, cfg).delay.mean();

        let d1 = delay(1);
        let d2 = delay(2);
        let dn = delay(n);
        assert!(d2 < d1, "k=2 ({d2}) should beat k=1 ({d1})");
        assert!(dn < d2, "k=n ({dn}) should beat k=2 ({d2})");
        // k = n matches perfect output queueing within noise.
        assert!(
            (dn - oq_delay).abs() < 0.3 + oq_delay * 0.1,
            "k=n delay {dn} vs output queueing {oq_delay}"
        );
    }

    #[test]
    fn bursty_hotspot_shows_speedup_value() {
        // The paper's client-server burst pattern: many inputs burst at
        // one output. Speedup moves the burst into the output queue
        // quickly, freeing the inputs for other traffic.
        let n = 8;
        let cfg = SimConfig::quick();
        let run = |k: usize| {
            let mut sw = SpeedupSwitch::new(n, k, 4, 5);
            let mut t = BurstyTraffic::new(n, 0.1, 8.0, 6).with_hotspot(0);
            simulate(&mut sw, &mut t, cfg)
        };
        let r1 = run(1);
        let r4 = run(4);
        // Same offered traffic; both deliver everything (no drops), but
        // the speedup switch holds cells at outputs, not inputs.
        assert!(r4.delay.mean() <= r1.delay.mean() + 0.5);
    }

    #[test]
    fn never_drops_cells() {
        let mut sw = SpeedupSwitch::new(4, 2, 4, 7);
        let mut t = RateMatrixTraffic::uniform(4, 1.0, 8);
        let r = simulate(&mut sw, &mut t, NO_WARMUP);
        assert_eq!(r.arrivals, r.departures + r.final_occupancy as u64);
        assert!(r.mean_output_utilization() > 0.9);
    }
}
