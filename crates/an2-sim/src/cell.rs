//! Cells, flows and arrivals.
//!
//! Data moves through the network in fixed-length ATM-style cells, each
//! tagged with a flow identifier used for routing (§2). Within the
//! single-switch simulator a cell is just its bookkeeping: flow, source
//! input, destination output, and arrival time (payload contents are
//! irrelevant to scheduling behaviour).

use an2_sched::{InputPort, OutputPort};

/// Identifier of a flow: a stream of cells between a pair of hosts (§2).
///
/// There may be multiple flows between the same input–output pair; cells
/// within one flow are never reordered by the switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

impl FlowId {
    /// The conventional one-flow-per-pair id used by workloads that do not
    /// model multiple flows: `i * n + j` for an `n`-port switch.
    pub fn for_pair(n: usize, input: InputPort, output: OutputPort) -> Self {
        FlowId((input.index() * n + output.index()) as u64)
    }
}

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A cell queued in (or moving through) a switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cell {
    /// The flow this cell belongs to.
    pub flow: FlowId,
    /// The input port the cell arrived on.
    pub input: InputPort,
    /// The output port the cell is routed to.
    pub output: OutputPort,
    /// The slot in which the cell arrived at this switch.
    pub arrival_slot: u64,
}

/// One cell arriving at the switch in a given slot.
///
/// At most one cell can arrive per input per slot (the input link delivers
/// one cell per cell time); traffic sources uphold this and the simulator
/// asserts it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// The input port the cell arrives on.
    pub input: InputPort,
    /// The output port the cell is destined for.
    pub output: OutputPort,
    /// The flow the cell belongs to.
    pub flow: FlowId,
}

impl Arrival {
    /// Convenience constructor using the one-flow-per-pair convention.
    pub fn pair(n: usize, input: InputPort, output: OutputPort) -> Self {
        Self {
            input,
            output,
            flow: FlowId::for_pair(n, input, output),
        }
    }

    /// Materializes the arrival as a queued [`Cell`] stamped with `slot`.
    pub fn into_cell(self, slot: u64) -> Cell {
        Cell {
            flow: self.flow,
            input: self.input,
            output: self.output,
            arrival_slot: slot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_pair_ids_are_distinct() {
        let n = 4;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in 0..n {
                let f = FlowId::for_pair(n, InputPort::new(i), OutputPort::new(j));
                assert!(seen.insert(f));
            }
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn arrival_to_cell_carries_fields() {
        let a = Arrival::pair(4, InputPort::new(1), OutputPort::new(2));
        let c = a.into_cell(99);
        assert_eq!(c.input, InputPort::new(1));
        assert_eq!(c.output, OutputPort::new(2));
        assert_eq!(c.arrival_slot, 99);
        assert_eq!(c.flow, FlowId(6));
        assert_eq!(c.flow.to_string(), "f6");
    }
}
