//! The input-queued crossbar switch (the AN2 organization).
//!
//! Cells wait in random-access input buffers ([`VoqBuffers`]); once per
//! slot a [`Scheduler`] — PIM in the paper, but any implementation of the
//! trait — computes a conflict-free matching from the request matrix, and
//! the matched cells cross the crossbar (§3.1). Cells are never dropped.

use crate::cell::Arrival;
use crate::fault::{DropCause, FaultKind, FaultLog, FaultPlan, PortSide};
use crate::metrics::SwitchReport;
use crate::model::{validate_arrivals, ModelMetrics, SwitchModel};
use crate::voq::VoqBuffers;
use an2_sched::{PortMask, PortSet, Scheduler};

/// An input-queued switch driven by a crossbar scheduler.
///
/// # Examples
///
/// ```
/// use an2_sched::Pim;
/// use an2_sim::switch::CrossbarSwitch;
/// use an2_sim::model::SwitchModel;
/// use an2_sim::traffic::{RateMatrixTraffic, Traffic};
///
/// let mut sw = CrossbarSwitch::new(Pim::new(16, 1));
/// let mut traffic = RateMatrixTraffic::uniform(16, 0.5, 2);
/// let mut buf = Vec::new();
/// for slot in 0..1000 {
///     buf.clear();
///     traffic.arrivals(slot, &mut buf);
///     sw.step(&buf);
/// }
/// let report = sw.report();
/// // At half load the switch keeps up: arrivals ~ departures.
/// assert!(report.departures as f64 >= report.arrivals as f64 * 0.95);
/// ```
#[derive(Clone, Debug)]
pub struct CrossbarSwitch<S> {
    scheduler: S,
    voq: VoqBuffers,
    metrics: ModelMetrics,
    /// Port health, updated by applied fault events and pushed to the
    /// scheduler only when it changes (so unfaulted runs never touch it).
    mask: PortMask,
    /// Scheduling is suspended while `slot < drift_until` (clock-drift
    /// excursions, §2).
    drift_until: u64,
}

impl<S: Scheduler> CrossbarSwitch<S> {
    /// Creates a switch around `scheduler`, sized by the scheduler's own
    /// port count where available; here the size is taken from the first
    /// request matrix, so the scheduler must be constructed for the
    /// intended radix.
    pub fn new(scheduler: S) -> CrossbarSwitch<S>
    where
        S: SizedScheduler,
    {
        let n = scheduler.ports();
        Self::with_ports(n, scheduler)
    }

    /// Creates a switch of explicit radix `n` around `scheduler`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > MAX_PORTS`. (A mismatch with the
    /// scheduler's own size surfaces as a panic on the first step.)
    pub fn with_ports(n: usize, scheduler: S) -> CrossbarSwitch<S> {
        CrossbarSwitch {
            scheduler,
            voq: VoqBuffers::new(n),
            metrics: ModelMetrics::new(n),
            mask: PortMask::all(n),
            drift_until: 0,
        }
    }

    /// The underlying scheduler.
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Mutable access to the underlying scheduler (e.g. to adjust
    /// statistical-matching reservations mid-run).
    pub fn scheduler_mut(&mut self) -> &mut S {
        &mut self.scheduler
    }

    /// The input buffers (for occupancy inspection).
    pub fn buffers(&self) -> &VoqBuffers {
        &self.voq
    }

    /// Mutable access to the input buffers (e.g. to configure a finite
    /// per-VOQ capacity before a fault run).
    pub fn buffers_mut(&mut self) -> &mut VoqBuffers {
        &mut self.voq
    }

    /// The current port health mask.
    pub fn port_mask(&self) -> PortMask {
        self.mask
    }

    /// Advances one slot under a fault plan: applies the plan's events due
    /// this slot (masking ports, losing arrivals, suspending scheduling
    /// during clock drift), then runs the ordinary arrival/schedule/
    /// transmit sequence, recording every applied fault and lost cell in
    /// `log`.
    ///
    /// The `switch` tag on events is ignored — the single-switch harness
    /// applies every due event to itself; build per-switch plans when
    /// driving several switches. With an empty plan this is bit-identical
    /// to [`SwitchModel::step`] (the acceptance bar for the fault layer
    /// being zero-impact when idle).
    ///
    /// # Panics
    ///
    /// Panics on the usual arrival violations, or if an event names a port
    /// outside the switch.
    pub fn step_faulted(&mut self, arrivals: &[Arrival], plan: &mut FaultPlan, log: &mut FaultLog) {
        let slot = self.metrics.slot();
        let mut injected = PortSet::new();
        let mut corrupted = PortSet::new();
        let mut mask_changed = false;
        for ev in plan.due(slot) {
            match ev.kind {
                FaultKind::LinkDown { output, .. } => {
                    mask_changed |= self.mask.fail_output(output);
                }
                FaultKind::LinkUp { output, .. } => {
                    mask_changed |= self.mask.recover_output(output);
                }
                FaultKind::PortFail { side, port, .. } => {
                    mask_changed |= match side {
                        PortSide::Input => self.mask.fail_input(port),
                        PortSide::Output => self.mask.fail_output(port),
                    };
                }
                FaultKind::PortRecover { side, port, .. } => {
                    mask_changed |= match side {
                        PortSide::Input => self.mask.recover_input(port),
                        PortSide::Output => self.mask.recover_output(port),
                    };
                }
                FaultKind::CellDrop { input, .. } => {
                    injected.insert(input);
                }
                FaultKind::CellCorrupt { input, .. } => {
                    corrupted.insert(input);
                }
                FaultKind::ClockDrift { slots, .. } => {
                    self.drift_until = self.drift_until.max(slot.saturating_add(slots));
                }
            }
            log.record_applied(*ev);
        }
        if mask_changed {
            self.scheduler.set_port_mask(self.mask);
        }
        let skip_schedule = slot < self.drift_until;
        self.advance_slot(arrivals, &injected, &corrupted, skip_schedule, Some(log));
    }

    /// The per-slot engine shared by [`SwitchModel::step`] (no faults) and
    /// [`CrossbarSwitch::step_faulted`].
    fn advance_slot(
        &mut self,
        arrivals: &[Arrival],
        injected: &PortSet,
        corrupted: &PortSet,
        skip_schedule: bool,
        mut log: Option<&mut FaultLog>,
    ) {
        let slot = self.metrics.slot();
        validate_arrivals(self.n(), arrivals);
        // 1. Arrivals join their flow queues and become eligible at once
        //    ("any flows that have had cells arrive at the switch in the
        //    meantime" are considered, §3.1) — unless a fault consumes them
        //    on the wire or the VOQ is at capacity.
        for a in arrivals {
            let faulted = if injected.contains(a.input.index()) {
                Some(DropCause::Injected)
            } else if corrupted.contains(a.input.index()) {
                Some(DropCause::Corrupted)
            } else {
                None
            };
            if let Some(cause) = faulted {
                if let Some(log) = log.as_deref_mut() {
                    log.record_drop(slot, 0, a.input.index(), a.flow.0, cause);
                }
                continue;
            }
            if self.voq.push(a.into_cell(slot)).is_admitted() {
                self.metrics.on_arrival();
            } else if let Some(log) = log.as_deref_mut() {
                log.record_drop(slot, 0, a.input.index(), a.flow.0, DropCause::BufferFull);
            }
        }
        if !skip_schedule {
            // 2. Schedule the crossbar from the request matrix. Queue-aware
            //    schedulers first get told what stands behind each request:
            //    the pair's VOQ depth and its head-of-line cell age. The
            //    walk covers exactly the active pairs (every requested pair
            //    has a queued cell by construction), so queue-oblivious
            //    schedulers pay nothing and weighted ones see fresh weights
            //    for every pair they may legally match.
            let requests = self.voq.requests();
            if self.scheduler.wants_queue_observations() {
                for (i, j) in requests.pairs() {
                    let depth = self.voq.pair_occupancy(i, j) as u32;
                    let age = self
                        .voq
                        .pair_head_arrival(i, j)
                        .map_or(0, |arrived| slot.saturating_sub(arrived) as u32);
                    self.scheduler.observe_queue(i, j, depth, age);
                }
            }
            let matching = self.scheduler.schedule(requests);
            debug_assert!(
                matching.respects(requests),
                "{} scheduled a pair with no queued cell",
                self.scheduler.name()
            );
            // 3. Matched pairs transmit one cell each.
            for (i, j) in matching.pairs() {
                let cell = self
                    .voq
                    .pop(i, j)
                    .expect("scheduler contract: matched pairs have queued cells");
                self.metrics.on_departure(&cell);
            }
        }
        self.metrics.end_slot(self.voq.len());
    }

    /// Loads a queue snapshot directly into the buffers, bypassing the
    /// one-cell-per-input-per-slot link constraint. Used to set up
    /// scenario states like the paper's Figure 1 (queues that accumulated
    /// before the observation window); cells are stamped with the current
    /// slot.
    ///
    /// Returns the number of cells that were *not* admitted (non-zero only
    /// with a finite per-VOQ capacity); callers must account for them so
    /// the conservation ledger stays balanced.
    ///
    /// # Panics
    ///
    /// Panics if any port is out of range or a flow changes output.
    #[must_use = "dropped preload cells must feed the conservation ledger"]
    pub fn preload(&mut self, arrivals: &[crate::cell::Arrival]) -> usize {
        let slot = self.metrics.slot();
        let mut dropped = 0;
        for a in arrivals {
            if self.voq.push(a.into_cell(slot)).is_admitted() {
                self.metrics.on_arrival();
            } else {
                dropped += 1;
            }
        }
        dropped
    }
}

impl<S: Scheduler> SwitchModel for CrossbarSwitch<S> {
    fn n(&self) -> usize {
        self.voq.n()
    }

    fn name(&self) -> &'static str {
        self.scheduler.name()
    }

    fn step(&mut self, arrivals: &[Arrival]) {
        let none = PortSet::new();
        self.advance_slot(arrivals, &none, &none, false, None);
    }

    fn queued(&self) -> usize {
        self.voq.len()
    }

    fn start_measurement(&mut self) {
        self.metrics.restart();
    }

    fn report(&self) -> SwitchReport {
        self.metrics.report(self.voq.len())
    }
}

/// Schedulers that know their own port count, enabling
/// [`CrossbarSwitch::new`] to size the buffers automatically.
pub trait SizedScheduler: Scheduler {
    /// The switch radix this scheduler was built for.
    fn ports(&self) -> usize;
}

impl<R: an2_sched::rng::SelectRng> SizedScheduler for an2_sched::Pim<R> {
    fn ports(&self) -> usize {
        self.n()
    }
}

impl<S: SizedScheduler> SizedScheduler for an2_sched::CheckedScheduler<S> {
    fn ports(&self) -> usize {
        self.inner().ports()
    }
}

impl SizedScheduler for an2_sched::islip::RoundRobinMatching {
    fn ports(&self) -> usize {
        self.n()
    }
}

impl<R: an2_sched::rng::SelectRng> SizedScheduler for an2_sched::stat::StatWithPimFill<R> {
    fn ports(&self) -> usize {
        self.stat().table().n()
    }
}

impl SizedScheduler for an2_sched::Mwm {
    fn ports(&self) -> usize {
        self.n()
    }
}

impl SizedScheduler for an2_sched::Serenade {
    fn ports(&self) -> usize {
        self.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{RateMatrixTraffic, TraceTraffic, Traffic};
    use an2_sched::maximum::MaximumMatching;
    use an2_sched::{AcceptPolicy, InputPort, IterationLimit, OutputPort, Pim};

    fn drive(model: &mut dyn SwitchModel, traffic: &mut dyn Traffic, slots: u64) {
        let mut buf = Vec::new();
        for s in 0..slots {
            buf.clear();
            traffic.arrivals(s, &mut buf);
            model.step(&buf);
        }
    }

    #[test]
    fn conservation_arrivals_equal_departures_plus_queued() {
        let mut sw = CrossbarSwitch::new(Pim::new(8, 3));
        let mut t = RateMatrixTraffic::uniform(8, 0.9, 4);
        drive(&mut sw, &mut t, 5000);
        let r = sw.report();
        assert_eq!(r.arrivals, r.departures + r.final_occupancy as u64);
    }

    #[test]
    fn single_cell_crosses_with_zero_delay() {
        let mut sw = CrossbarSwitch::new(Pim::new(4, 0));
        let mut t = TraceTraffic::new(4, [(0, 2, 3)]);
        drive(&mut sw, &mut t, 2);
        let r = sw.report();
        assert_eq!(r.departures, 1);
        assert_eq!(r.delay.mean(), 0.0);
        assert_eq!(r.departures_per_output[3], 1);
        assert_eq!(sw.queued(), 0);
    }

    #[test]
    fn contention_serializes_departures() {
        // Three inputs send to output 0 in the same slot: departures occur
        // over three consecutive slots, delays {0, 1, 2} in some order.
        let mut sw = CrossbarSwitch::new(Pim::new(4, 1));
        let mut t = TraceTraffic::new(4, [(0, 0, 0), (0, 1, 0), (0, 2, 0)]);
        drive(&mut sw, &mut t, 5);
        let r = sw.report();
        assert_eq!(r.departures, 3);
        assert_eq!(r.delay.max(), 2);
        assert!((r.delay.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn queue_observations_reach_the_scheduler() {
        use crate::cell::{Arrival, FlowId};
        // Inputs 0 and 1 contend for output 0; input 1's VOQ is deeper, so
        // LQF-weighted MWM must serve it first — proof the depth/age walk
        // in advance_slot actually lands in the scheduler's Q-matrix.
        let mut sw = CrossbarSwitch::new(an2_sched::Mwm::lqf(4));
        let shallow = Arrival {
            input: InputPort::new(0),
            output: OutputPort::new(0),
            flow: FlowId(1),
        };
        let deep = Arrival {
            input: InputPort::new(1),
            output: OutputPort::new(0),
            flow: FlowId(2),
        };
        let dropped = sw.preload(&[shallow, deep, deep, deep]);
        assert_eq!(dropped, 0);
        sw.step(&[]);
        assert_eq!(sw.voq.pair_occupancy(InputPort::new(0), OutputPort::new(0)), 1);
        assert_eq!(sw.voq.pair_occupancy(InputPort::new(1), OutputPort::new(0)), 2);
        // OCF flips the preference once input 0's head cell is the elder:
        // both heads arrived at slot 0, age ties at the next slot, and the
        // tie breaks to the lower input index — input 0 drains first.
        let mut sw = CrossbarSwitch::new(an2_sched::Mwm::ocf(4));
        let dropped = sw.preload(&[shallow, deep, deep, deep]);
        assert_eq!(dropped, 0);
        sw.step(&[]);
        assert_eq!(sw.voq.pair_occupancy(InputPort::new(0), OutputPort::new(0)), 0);
        assert_eq!(sw.voq.pair_occupancy(InputPort::new(1), OutputPort::new(0)), 3);
    }

    #[test]
    fn serenade_switch_conserves_cells() {
        let mut sw = CrossbarSwitch::new(an2_sched::Serenade::new(8, 21));
        let mut t = RateMatrixTraffic::uniform(8, 0.8, 13);
        drive(&mut sw, &mut t, 3000);
        let r = sw.report();
        assert_eq!(sw.name(), "serenade");
        assert_eq!(r.arrivals, r.departures + r.final_occupancy as u64);
    }

    #[test]
    fn maximum_matching_switch_also_works() {
        let mut sw = CrossbarSwitch::with_ports(8, MaximumMatching::new());
        let mut t = RateMatrixTraffic::uniform(8, 0.95, 9);
        drive(&mut sw, &mut t, 4000);
        let r = sw.report();
        assert_eq!(sw.name(), "maximum");
        // At 0.95 uniform load a maximum-matching switch keeps up.
        assert!(r.final_occupancy < 500, "occupancy {}", r.final_occupancy);
    }

    #[test]
    fn start_measurement_truncates_transient() {
        let mut sw = CrossbarSwitch::new(Pim::new(4, 5));
        let mut t = RateMatrixTraffic::uniform(4, 0.8, 6);
        drive(&mut sw, &mut t, 1000);
        sw.start_measurement();
        let r0 = sw.report();
        assert_eq!(r0.departures, 0);
        assert_eq!(r0.slots, 0);
        drive(&mut sw, &mut t, 1000);
        let r = sw.report();
        assert_eq!(r.slots, 1000);
        assert!(r.departures > 0);
    }

    #[test]
    fn pim_four_iterations_sustains_full_uniform_load_nearly() {
        // Peak throughput of PIM(4) under uniform load approaches 1.0
        // (Figure 3); with offered load 1.0 the queue must grow far slower
        // than a FIFO switch's would.
        let mut sw = CrossbarSwitch::new(Pim::new(16, 7));
        let mut t = RateMatrixTraffic::uniform(16, 1.0, 8);
        drive(&mut sw, &mut t, 20_000);
        let r = sw.report();
        let util = r.mean_output_utilization();
        assert!(util > 0.93, "PIM(4) uniform saturation utilization {util}");
    }

    #[test]
    fn step_faulted_with_empty_plan_matches_step() {
        use crate::fault::{FaultLog, FaultPlan};
        let mut plain = CrossbarSwitch::new(Pim::new(8, 3));
        let mut faulted = CrossbarSwitch::new(Pim::new(8, 3));
        let mut ta = RateMatrixTraffic::uniform(8, 0.9, 4);
        let mut tb = RateMatrixTraffic::uniform(8, 0.9, 4);
        let mut plan = FaultPlan::new();
        let mut log = FaultLog::new();
        let mut buf = Vec::new();
        for s in 0..500 {
            buf.clear();
            ta.arrivals(s, &mut buf);
            plain.step(&buf);
            buf.clear();
            tb.arrivals(s, &mut buf);
            faulted.step_faulted(&buf, &mut plan, &mut log);
        }
        let (a, b) = (plain.report(), faulted.report());
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.departures, b.departures);
        assert_eq!(a.final_occupancy, b.final_occupancy);
        assert_eq!(a.delay.max(), b.delay.max());
        assert_eq!(log.digest(), FaultLog::new().digest());
    }

    #[test]
    fn port_fail_halts_output_until_recovery() {
        use crate::fault::{FaultEvent, FaultKind, FaultLog, FaultPlan, PortSide};
        // Persistent traffic to output 1; fail it for slots 10..20.
        let mut sw = CrossbarSwitch::new(Pim::new(4, 9));
        let mut plan = FaultPlan::from_events(vec![
            FaultEvent {
                slot: 10,
                kind: FaultKind::PortFail {
                    switch: 0,
                    side: PortSide::Output,
                    port: 1,
                },
            },
            FaultEvent {
                slot: 20,
                kind: FaultKind::PortRecover {
                    switch: 0,
                    side: PortSide::Output,
                    port: 1,
                },
            },
        ]);
        let mut log = FaultLog::new();
        let arrivals = [Arrival::pair(4, InputPort::new(0), OutputPort::new(1))];
        let mut departed_at = Vec::new();
        for s in 0..40u64 {
            let before = sw.report().departures;
            sw.step_faulted(&arrivals, &mut plan, &mut log);
            if sw.report().departures > before {
                departed_at.push(s);
            }
        }
        assert!(sw.port_mask().is_full(), "recovery restored the mask");
        // No departures while the output was failed.
        assert!(departed_at.iter().all(|&s| !(10..20).contains(&s)));
        // Service before the failure and after recovery.
        assert!(departed_at.contains(&5));
        assert!(departed_at.contains(&25));
        assert_eq!(log.applied().len(), 2);
    }

    #[test]
    fn injected_and_corrupted_arrivals_are_logged_drops() {
        use crate::fault::{DropCause, FaultEvent, FaultKind, FaultLog, FaultPlan};
        let mut sw = CrossbarSwitch::new(Pim::new(4, 9));
        let mut plan = FaultPlan::from_events(vec![
            FaultEvent {
                slot: 0,
                kind: FaultKind::CellDrop { switch: 0, input: 0 },
            },
            FaultEvent {
                slot: 1,
                kind: FaultKind::CellCorrupt { switch: 0, input: 0 },
            },
        ]);
        let mut log = FaultLog::new();
        let arrivals = [Arrival::pair(4, InputPort::new(0), OutputPort::new(1))];
        for _ in 0..3 {
            sw.step_faulted(&arrivals, &mut plan, &mut log);
        }
        // Slots 0 and 1 lost their arrival; slot 2's got through.
        assert_eq!(log.cells_dropped(), 2);
        assert_eq!(log.drops()[0].cause, DropCause::Injected);
        assert_eq!(log.drops()[1].cause, DropCause::Corrupted);
        assert_eq!(sw.report().arrivals, 1);
    }

    #[test]
    fn clock_drift_suspends_scheduling_but_not_buffering() {
        use crate::fault::{FaultEvent, FaultKind, FaultLog, FaultPlan};
        let mut sw = CrossbarSwitch::new(Pim::new(4, 9));
        let mut plan = FaultPlan::from_events(vec![FaultEvent {
            slot: 0,
            kind: FaultKind::ClockDrift { switch: 0, slots: 5 },
        }]);
        let mut log = FaultLog::new();
        let arrivals = [Arrival::pair(4, InputPort::new(2), OutputPort::new(3))];
        for _ in 0..5 {
            sw.step_faulted(&arrivals, &mut plan, &mut log);
        }
        // All five arrivals buffered, none scheduled during the excursion.
        assert_eq!(sw.report().arrivals, 5);
        assert_eq!(sw.report().departures, 0);
        sw.step_faulted(&arrivals, &mut plan, &mut log);
        assert!(sw.report().departures > 0, "scheduling resumed after drift");
    }

    #[test]
    fn buffer_full_drops_are_logged() {
        use crate::fault::{DropCause, FaultLog, FaultPlan};
        let mut sw = CrossbarSwitch::new(Pim::new(4, 9));
        sw.buffers_mut().set_pair_capacity(Some(1));
        let mut plan = FaultPlan::new();
        let mut log = FaultLog::new();
        // Two inputs fight for output 0: each slot one wins, the loser's
        // VOQ holds its one queued cell, so the loser's next arrival drops.
        let arrivals = [
            Arrival::pair(4, InputPort::new(0), OutputPort::new(0)),
            Arrival::pair(4, InputPort::new(1), OutputPort::new(0)),
        ];
        for _ in 0..10 {
            sw.step_faulted(&arrivals, &mut plan, &mut log);
        }
        assert!(log.cells_dropped() > 0);
        assert!(log.drops().iter().all(|d| d.cause == DropCause::BufferFull));
        assert_eq!(sw.buffers().drops(), log.cells_dropped());
        let r = sw.report();
        assert_eq!(r.arrivals, r.departures + r.final_occupancy as u64);
    }

    #[test]
    fn scheduler_accessors() {
        let mut sw = CrossbarSwitch::new(Pim::with_options(
            4,
            2,
            IterationLimit::Fixed(2),
            AcceptPolicy::Random,
        ));
        assert_eq!(sw.scheduler().n(), 4);
        let _ = sw.scheduler_mut();
        assert_eq!(sw.buffers().n(), 4);
        assert_eq!(
            sw.buffers().pair_occupancy(InputPort::new(0), OutputPort::new(0)),
            0
        );
    }
}
