//! The input-queued crossbar switch (the AN2 organization).
//!
//! Cells wait in random-access input buffers ([`VoqBuffers`]); once per
//! slot a [`Scheduler`] — PIM in the paper, but any implementation of the
//! trait — computes a conflict-free matching from the request matrix, and
//! the matched cells cross the crossbar (§3.1). Cells are never dropped.

use crate::cell::Arrival;
use crate::metrics::SwitchReport;
use crate::model::{validate_arrivals, ModelMetrics, SwitchModel};
use crate::voq::VoqBuffers;
use an2_sched::Scheduler;

/// An input-queued switch driven by a crossbar scheduler.
///
/// # Examples
///
/// ```
/// use an2_sched::Pim;
/// use an2_sim::switch::CrossbarSwitch;
/// use an2_sim::model::SwitchModel;
/// use an2_sim::traffic::{RateMatrixTraffic, Traffic};
///
/// let mut sw = CrossbarSwitch::new(Pim::new(16, 1));
/// let mut traffic = RateMatrixTraffic::uniform(16, 0.5, 2);
/// let mut buf = Vec::new();
/// for slot in 0..1000 {
///     buf.clear();
///     traffic.arrivals(slot, &mut buf);
///     sw.step(&buf);
/// }
/// let report = sw.report();
/// // At half load the switch keeps up: arrivals ~ departures.
/// assert!(report.departures as f64 >= report.arrivals as f64 * 0.95);
/// ```
#[derive(Clone, Debug)]
pub struct CrossbarSwitch<S> {
    scheduler: S,
    voq: VoqBuffers,
    metrics: ModelMetrics,
}

impl<S: Scheduler> CrossbarSwitch<S> {
    /// Creates a switch around `scheduler`, sized by the scheduler's own
    /// port count where available; here the size is taken from the first
    /// request matrix, so the scheduler must be constructed for the
    /// intended radix.
    pub fn new(scheduler: S) -> CrossbarSwitch<S>
    where
        S: SizedScheduler,
    {
        let n = scheduler.ports();
        CrossbarSwitch {
            scheduler,
            voq: VoqBuffers::new(n),
            metrics: ModelMetrics::new(n),
        }
    }

    /// Creates a switch of explicit radix `n` around `scheduler`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > MAX_PORTS`. (A mismatch with the
    /// scheduler's own size surfaces as a panic on the first step.)
    pub fn with_ports(n: usize, scheduler: S) -> CrossbarSwitch<S> {
        CrossbarSwitch {
            scheduler,
            voq: VoqBuffers::new(n),
            metrics: ModelMetrics::new(n),
        }
    }

    /// The underlying scheduler.
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Mutable access to the underlying scheduler (e.g. to adjust
    /// statistical-matching reservations mid-run).
    pub fn scheduler_mut(&mut self) -> &mut S {
        &mut self.scheduler
    }

    /// The input buffers (for occupancy inspection).
    pub fn buffers(&self) -> &VoqBuffers {
        &self.voq
    }

    /// Loads a queue snapshot directly into the buffers, bypassing the
    /// one-cell-per-input-per-slot link constraint. Used to set up
    /// scenario states like the paper's Figure 1 (queues that accumulated
    /// before the observation window); cells are stamped with the current
    /// slot.
    ///
    /// # Panics
    ///
    /// Panics if any port is out of range or a flow changes output.
    pub fn preload(&mut self, arrivals: &[crate::cell::Arrival]) {
        let slot = self.metrics.slot();
        for a in arrivals {
            self.voq.push(a.into_cell(slot));
            self.metrics.on_arrival();
        }
    }
}

impl<S: Scheduler> SwitchModel for CrossbarSwitch<S> {
    fn n(&self) -> usize {
        self.voq.n()
    }

    fn name(&self) -> &'static str {
        self.scheduler.name()
    }

    fn step(&mut self, arrivals: &[Arrival]) {
        let slot = self.metrics.slot();
        validate_arrivals(self.n(), arrivals);
        // 1. Arrivals join their flow queues and become eligible at once
        //    ("any flows that have had cells arrive at the switch in the
        //    meantime" are considered, §3.1).
        for a in arrivals {
            self.voq.push(a.into_cell(slot));
            self.metrics.on_arrival();
        }
        // 2. Schedule the crossbar from the request matrix.
        let requests = self.voq.requests();
        let matching = self.scheduler.schedule(requests);
        debug_assert!(
            matching.respects(requests),
            "{} scheduled a pair with no queued cell",
            self.scheduler.name()
        );
        // 3. Matched pairs transmit one cell each.
        for (i, j) in matching.pairs() {
            let cell = self
                .voq
                .pop(i, j)
                .expect("scheduler contract: matched pairs have queued cells");
            self.metrics.on_departure(&cell);
        }
        self.metrics.end_slot(self.voq.len());
    }

    fn queued(&self) -> usize {
        self.voq.len()
    }

    fn start_measurement(&mut self) {
        self.metrics.restart();
    }

    fn report(&self) -> SwitchReport {
        self.metrics.report(self.voq.len())
    }
}

/// Schedulers that know their own port count, enabling
/// [`CrossbarSwitch::new`] to size the buffers automatically.
pub trait SizedScheduler: Scheduler {
    /// The switch radix this scheduler was built for.
    fn ports(&self) -> usize;
}

impl<R: an2_sched::rng::SelectRng> SizedScheduler for an2_sched::Pim<R> {
    fn ports(&self) -> usize {
        self.n()
    }
}

impl SizedScheduler for an2_sched::islip::RoundRobinMatching {
    fn ports(&self) -> usize {
        self.n()
    }
}

impl<R: an2_sched::rng::SelectRng> SizedScheduler for an2_sched::stat::StatWithPimFill<R> {
    fn ports(&self) -> usize {
        self.stat().table().n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{RateMatrixTraffic, TraceTraffic, Traffic};
    use an2_sched::maximum::MaximumMatching;
    use an2_sched::{AcceptPolicy, InputPort, IterationLimit, OutputPort, Pim};

    fn drive(model: &mut dyn SwitchModel, traffic: &mut dyn Traffic, slots: u64) {
        let mut buf = Vec::new();
        for s in 0..slots {
            buf.clear();
            traffic.arrivals(s, &mut buf);
            model.step(&buf);
        }
    }

    #[test]
    fn conservation_arrivals_equal_departures_plus_queued() {
        let mut sw = CrossbarSwitch::new(Pim::new(8, 3));
        let mut t = RateMatrixTraffic::uniform(8, 0.9, 4);
        drive(&mut sw, &mut t, 5000);
        let r = sw.report();
        assert_eq!(r.arrivals, r.departures + r.final_occupancy as u64);
    }

    #[test]
    fn single_cell_crosses_with_zero_delay() {
        let mut sw = CrossbarSwitch::new(Pim::new(4, 0));
        let mut t = TraceTraffic::new(4, [(0, 2, 3)]);
        drive(&mut sw, &mut t, 2);
        let r = sw.report();
        assert_eq!(r.departures, 1);
        assert_eq!(r.delay.mean(), 0.0);
        assert_eq!(r.departures_per_output[3], 1);
        assert_eq!(sw.queued(), 0);
    }

    #[test]
    fn contention_serializes_departures() {
        // Three inputs send to output 0 in the same slot: departures occur
        // over three consecutive slots, delays {0, 1, 2} in some order.
        let mut sw = CrossbarSwitch::new(Pim::new(4, 1));
        let mut t = TraceTraffic::new(4, [(0, 0, 0), (0, 1, 0), (0, 2, 0)]);
        drive(&mut sw, &mut t, 5);
        let r = sw.report();
        assert_eq!(r.departures, 3);
        assert_eq!(r.delay.max(), 2);
        assert!((r.delay.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn maximum_matching_switch_also_works() {
        let mut sw = CrossbarSwitch::with_ports(8, MaximumMatching::new());
        let mut t = RateMatrixTraffic::uniform(8, 0.95, 9);
        drive(&mut sw, &mut t, 4000);
        let r = sw.report();
        assert_eq!(sw.name(), "maximum");
        // At 0.95 uniform load a maximum-matching switch keeps up.
        assert!(r.final_occupancy < 500, "occupancy {}", r.final_occupancy);
    }

    #[test]
    fn start_measurement_truncates_transient() {
        let mut sw = CrossbarSwitch::new(Pim::new(4, 5));
        let mut t = RateMatrixTraffic::uniform(4, 0.8, 6);
        drive(&mut sw, &mut t, 1000);
        sw.start_measurement();
        let r0 = sw.report();
        assert_eq!(r0.departures, 0);
        assert_eq!(r0.slots, 0);
        drive(&mut sw, &mut t, 1000);
        let r = sw.report();
        assert_eq!(r.slots, 1000);
        assert!(r.departures > 0);
    }

    #[test]
    fn pim_four_iterations_sustains_full_uniform_load_nearly() {
        // Peak throughput of PIM(4) under uniform load approaches 1.0
        // (Figure 3); with offered load 1.0 the queue must grow far slower
        // than a FIFO switch's would.
        let mut sw = CrossbarSwitch::new(Pim::new(16, 7));
        let mut t = RateMatrixTraffic::uniform(16, 1.0, 8);
        drive(&mut sw, &mut t, 20_000);
        let r = sw.report();
        let util = r.mean_output_utilization();
        assert!(util > 0.93, "PIM(4) uniform saturation utilization {util}");
    }

    #[test]
    fn scheduler_accessors() {
        let mut sw = CrossbarSwitch::new(Pim::with_options(
            4,
            2,
            IterationLimit::Fixed(2),
            AcceptPolicy::Random,
        ));
        assert_eq!(sw.scheduler().n(), 4);
        let _ = sw.scheduler_mut();
        assert_eq!(sw.buffers().n(), 4);
        assert_eq!(
            sw.buffers().pair_occupancy(InputPort::new(0), OutputPort::new(0)),
            0
        );
    }
}
