//! Closed-form queueing models used to validate the simulator.
//!
//! The evaluation literature the paper leans on has exact results for two
//! of our switch models; the test suite checks the simulator against them:
//!
//! * **Output queueing** (Karol, Hluchyj & Morgan 1987, eq. 2): with
//!   uniform Bernoulli arrivals at load `ρ` on an `N×N` switch, each
//!   output is a discrete-time queue with binomial arrivals and the mean
//!   steady-state waiting time is
//!   `W = ((N−1)/N) · ρ / (2(1−ρ))`.
//! * **FIFO head-of-line saturation** (same paper): the saturation
//!   throughput of FIFO input queueing is the root of a Markov analysis;
//!   known exact/numeric values per `N` approach `2−√2 ≈ 0.586`.

/// Mean queueing delay (slots) of a uniform-Bernoulli output-queued
/// `n`×`n` switch at offered load `rho` — Karol et al. 1987, eq. 2.
///
/// # Panics
///
/// Panics if `n == 0` or `rho` is not in `[0, 1)`.
///
/// # Examples
///
/// ```
/// use an2_sim::analytic::output_queueing_mean_delay;
/// let w = output_queueing_mean_delay(16, 0.8);
/// assert!((w - 1.875).abs() < 1e-9);
/// ```
pub fn output_queueing_mean_delay(n: usize, rho: f64) -> f64 {
    assert!(n > 0, "switch must have at least one port");
    assert!((0.0..1.0).contains(&rho), "load must be in [0, 1)");
    (n as f64 - 1.0) / n as f64 * rho / (2.0 * (1.0 - rho))
}

/// FIFO input-queueing saturation throughput for selected switch sizes —
/// the numeric values tabulated by Karol et al. 1987 (Table I).
///
/// Returns `None` for sizes not tabulated.
pub fn hol_saturation_throughput(n: usize) -> Option<f64> {
    Some(match n {
        1 => 1.0,
        2 => 0.7500,
        3 => 0.6825,
        4 => 0.6553,
        5 => 0.6399,
        6 => 0.6302,
        7 => 0.6234,
        8 => 0.6184,
        _ => return None,
    })
}

/// The asymptotic (`N → ∞`) FIFO saturation throughput, `2 − √2`.
pub fn hol_saturation_asymptote() -> f64 {
    2.0 - std::f64::consts::SQRT_2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo_switch::FifoSwitch;
    use crate::output_queued::OutputQueuedSwitch;
    use crate::sim::{simulate, SimConfig};
    use crate::traffic::RateMatrixTraffic;
    use an2_sched::fifo::FifoPriority;

    #[test]
    fn formula_sanity() {
        // rho -> 0: no waiting; rho -> 1: divergence; N = 1: no contention.
        assert_eq!(output_queueing_mean_delay(16, 0.0), 0.0);
        assert_eq!(output_queueing_mean_delay(1, 0.9), 0.0);
        assert!(output_queueing_mean_delay(16, 0.99) > 40.0);
        // Monotone in both arguments.
        assert!(
            output_queueing_mean_delay(16, 0.8) > output_queueing_mean_delay(16, 0.5)
        );
        assert!(
            output_queueing_mean_delay(32, 0.8) > output_queueing_mean_delay(2, 0.8)
        );
    }

    #[test]
    fn simulated_output_queueing_matches_karol_formula() {
        let n = 16;
        let cfg = SimConfig {
            warmup_slots: 5_000,
            measure_slots: 60_000,
        };
        for rho in [0.3, 0.6, 0.8, 0.9] {
            let mut sw = OutputQueuedSwitch::new(n);
            let mut t = RateMatrixTraffic::uniform(n, rho, 42);
            let sim = simulate(&mut sw, &mut t, cfg).delay.mean();
            let theory = output_queueing_mean_delay(n, rho);
            assert!(
                (sim - theory).abs() < theory * 0.08 + 0.05,
                "rho={rho}: simulated {sim} vs theory {theory}"
            );
        }
    }

    #[test]
    fn simulated_hol_saturation_matches_karol_table() {
        let cfg = SimConfig {
            warmup_slots: 20_000,
            measure_slots: 60_000,
        };
        for n in [2usize, 4, 8] {
            let mut sw = FifoSwitch::new(n, FifoPriority::Random, 7);
            let mut t = RateMatrixTraffic::uniform(n, 1.0, 8);
            let util = simulate(&mut sw, &mut t, cfg).mean_output_utilization();
            let theory = hol_saturation_throughput(n).unwrap();
            assert!(
                (util - theory).abs() < 0.02,
                "N={n}: simulated saturation {util} vs theory {theory}"
            );
        }
        assert!(hol_saturation_throughput(64).is_none());
        assert!((hol_saturation_asymptote() - 0.5858).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "load must be in")]
    fn saturation_load_panics() {
        let _ = output_queueing_mean_delay(4, 1.0);
    }
}
