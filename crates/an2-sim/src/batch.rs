//! Batched structure-of-arrays crossbar engine for large radices.
//!
//! [`CrossbarSwitch`](crate::switch::CrossbarSwitch) walks heap-allocated
//! per-flow queues (`HashMap<FlowId, VecDeque<Cell>>`) every slot. That
//! layout supports the general many-flows-per-pair experiments, but at
//! N=1024 the pointer chasing and per-cell `Cell` bookkeeping dominate the
//! slot loop. [`BatchCrossbar`] is the wide-radix engine behind the
//! scaling benches: it restricts itself to the *one-flow-per-pair*
//! convention (`FlowId::for_pair`, which every uniform/load-sweep workload
//! uses) and stores each input–output pair's queue as a FIFO of `u32`
//! arrival slots in one dense `n*n` table of cache-line records.
//!
//! Under that convention the two engines are **bit-identical**: the VOQ
//! round-robin over flows degenerates to a per-pair FIFO, so pushing
//! arrival slots instead of `Cell` objects loses nothing, and the
//! incremental request-matrix maintenance (set on first cell, clear on
//! drain) matches [`crate::voq::VoqBuffers`] exactly. The property test
//! `tests/batch_vs_scalar.rs` pins byte-identical [`SwitchReport`]
//! digests across schedulers, sizes and loads.
//!
//! Layout at N=1024 (width `W = 16`):
//!
//! ```text
//! pairs:     [PairQueue; n*n]  row-major, pairs[i*n+j] = one 64-byte line:
//!                              7 inline u32 slots + depth + departure count
//!                              (+ spill ring pointer for deep queues)
//! requests:  RequestMatrixN<W> 16 words/row bit-matrix, set/clear deltas
//! per_output:[u64; n]          departure counts per output link
//! ```
//!
//! Arrivals address random pairs, so the table is touched at cache-miss
//! granularity; packing a pair's queue, depth and counter into one line
//! (instead of ring-header + boxed-buffer + count-array, three lines) is
//! worth ~2x on the N=1024 slot rate.
//!
//! Delay statistics are collected twice: the exact [`DelayStats`]
//! histogram (for digest parity with the scalar engine) and the O(1)-memory
//! [`QuantileSketch`] (what long network runs keep when the exact
//! histogram would grow unboundedly).

use crate::cell::{Arrival, FlowId};
use crate::fault::{DropCause, FaultKind, FaultLog, FaultPlan, PortSide};
use crate::metrics::{DelayStats, QuantileSketch, SwitchReport};
use crate::model::SwitchModel;
use an2_sched::{MatchingN, PortMaskN, PortSetN, RequestMatrixN, Scheduler};

/// Cells a [`PairQueue`] holds inline before spilling to a boxed ring.
const QUEUE_INLINE: usize = 7;

/// One input–output pair's FIFO of `u32` arrival slots plus its departure
/// counter, packed into a single 64-byte cache line.
///
/// Arrivals land on random pairs of an `n*n` table, so every queue touch
/// is a cache miss; what matters is how *many* lines each touch drags in.
/// Keeping the first [`QUEUE_INLINE`] slots, the depth, and the departure
/// count in one aligned record makes the common shallow-queue case
/// (steady-state mean depth ≈ 1) exactly one line per enqueue/dequeue —
/// the separate ring-header / boxed-buffer / count-array layout this
/// replaced paid three.
///
/// A queue deeper than [`QUEUE_INLINE`] spills to a power-of-two boxed
/// ring and stays spilled (two lines per touch) until the engine resets;
/// shrinking back was measured as churn without benefit since deep pairs
/// under sustained load spill right back.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PairQueue {
    /// Inline FIFO storage, front-first in `[0..len)` while unspilled.
    inline: [u32; QUEUE_INLINE],
    /// Queue depth, inline or spilled.
    len: u32,
    /// Ring head index; meaningful only once spilled.
    head: u32,
    /// Cells of this pair lost to injected faults over the engine's whole
    /// lifetime (never reset: the drop ledger spans measurement windows).
    dropped: u32,
    /// Departures from this pair in the measurement window.
    count: u64,
    /// Spilled ring storage; empty means unspilled, else a power of two.
    spill: Box<[u32]>,
}

impl PairQueue {
    #[inline]
    // an2-lint: allow(overflow-discipline) occupancy counters are bounded by queue capacity; sequence counters are monotone u64
    // an2-lint: allow(panic-freedom) lane and port indices are < LANES and < n by the SoA layout's construction bounds
    fn enqueue(&mut self, v: u32) {
        let len = self.len as usize;
        if !self.spill.is_empty() {
            if len == self.spill.len() {
                self.grow();
            }
            let mask = self.spill.len() - 1;
            let tail = (self.head as usize + len) & mask;
            self.spill[tail] = v;
        } else if len < QUEUE_INLINE {
            self.inline[len] = v;
        } else {
            self.spill_out();
            self.spill[len] = v;
        }
        self.len += 1;
    }

    #[inline]
    // an2-lint: allow(overflow-discipline) occupancy decrements follow a non-empty check; delivery counters are monotone u64
    // an2-lint: allow(panic-freedom) lane and port indices are < LANES and < n by the SoA layout's construction bounds
    fn dequeue(&mut self) -> u32 {
        debug_assert!(self.len > 0, "dequeue from empty pair queue");
        self.len -= 1;
        if self.spill.is_empty() {
            let v = self.inline[0];
            // One-lane shift within the same cache line: cheaper than ring
            // arithmetic would make the spilled-or-not branch.
            self.inline.copy_within(1..QUEUE_INLINE, 0);
            v
        } else {
            let mask = self.spill.len() - 1;
            let v = self.spill[self.head as usize];
            self.head = ((self.head as usize + 1) & mask) as u32;
            v
        }
    }

    /// First overflow past the inline slots: moves them into a fresh ring
    /// with room to grow (head at 0, so the caller appends at `len`).
    // an2-lint: cold
    #[cold]
    fn spill_out(&mut self) {
        let mut buf = vec![0u32; (QUEUE_INLINE + 1).next_power_of_two() * 2].into_boxed_slice();
        buf[..QUEUE_INLINE].copy_from_slice(&self.inline);
        self.spill = buf;
        self.head = 0;
    }

    /// Doubles spilled capacity, compacting the live window to the front.
    // an2-lint: cold
    #[cold]
    fn grow(&mut self) {
        let cap = self.spill.len();
        let mut next = vec![0u32; cap * 2].into_boxed_slice();
        let mask = cap - 1;
        for k in 0..self.len as usize {
            next[k] = self.spill[(self.head as usize + k) & mask];
        }
        self.spill = next;
        self.head = 0;
    }
}

/// Structure-of-arrays crossbar simulator for the one-flow-per-pair
/// regime, generic over the scheduler bitset width `W`.
///
/// Behaves identically to [`CrossbarSwitch`](crate::switch::CrossbarSwitch)
/// with unbounded buffers when every arrival's flow id is
/// [`FlowId::for_pair`]; panics on any other flow id (use the scalar
/// engine for many-flows-per-pair experiments).
///
/// # Examples
///
/// ```
/// use an2_sched::Pim;
/// use an2_sim::batch::BatchCrossbar;
/// use an2_sim::sim::{simulate, SimConfig};
/// use an2_sim::traffic::RateMatrixTraffic;
///
/// let mut switch = BatchCrossbar::new(16, Pim::new(16, 42));
/// let mut traffic = RateMatrixTraffic::uniform(16, 0.80, 43);
/// let report = simulate(&mut switch, &mut traffic, SimConfig::quick());
/// assert!(report.delay.mean() < 10.0);
/// ```
#[derive(Debug)]
pub struct BatchCrossbar<S, const W: usize = 4> {
    n: usize,
    scheduler: S,
    requests: RequestMatrixN<W>,
    pairs: Vec<PairQueue>,
    queued: usize,
    slot: u64,
    measure_start: u64,
    arrivals: u64,
    departures: u64,
    per_output: Vec<u64>,
    delay: DelayStats,
    sketch: QuantileSketch,
    peak_occupancy: usize,
    /// Port health as seen by [`BatchCrossbar::step_faulted`]; failed
    /// ports keep buffering arrivals but are masked out of scheduling.
    mask: PortMaskN<W>,
    /// Scheduling is suspended while `slot < drift_until` (clock drift).
    drift_until: u64,
    /// Lifetime cells admitted to a pair queue (never reset).
    admitted_total: u64,
    /// Lifetime cells transmitted (never reset).
    departed_total: u64,
    /// Lifetime cells consumed by injected faults before admission.
    dropped: u64,
}

impl<const W: usize, S: Scheduler<W>> BatchCrossbar<S, W> {
    /// Creates an `n`-port batch engine driven by `scheduler`.
    ///
    /// Allocates the full `n*n` pair table up front (~64 MB at N=1024,
    /// one cache line per pair); the slot loop itself never allocates
    /// except for amortized spill-ring growth.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n` exceeds the width's capacity (`W * 64`).
    pub fn new(n: usize, scheduler: S) -> Self {
        assert!(n > 0, "switch must have at least one port");
        assert!(
            n <= PortSetN::<W>::CAPACITY,
            "switch size {n} exceeds width capacity {}",
            PortSetN::<W>::CAPACITY
        );
        let mut pairs = Vec::new();
        pairs.resize_with(n * n, PairQueue::default);
        Self {
            n,
            scheduler,
            requests: RequestMatrixN::new(n),
            pairs,
            queued: 0,
            slot: 0,
            measure_start: 0,
            arrivals: 0,
            departures: 0,
            per_output: vec![0; n],
            delay: DelayStats::new(),
            sketch: QuantileSketch::new(),
            peak_occupancy: 0,
            mask: PortMaskN::all(n),
            drift_until: 0,
            admitted_total: 0,
            departed_total: 0,
            dropped: 0,
        }
    }

    /// Installs a port health mask on the underlying scheduler.
    // an2-lint: allow(panic-freedom) a mis-sized mask is a harness bug, not degraded traffic; the trait documents the panic
    pub fn set_port_mask(&mut self, mask: PortMaskN<W>) {
        assert_eq!(mask.n(), self.n, "mask size mismatch");
        self.mask = mask;
        self.scheduler.set_port_mask(mask);
    }

    /// The current port health mask (mutated by [`BatchCrossbar::step_faulted`]).
    pub fn port_mask(&self) -> PortMaskN<W> {
        self.mask
    }

    /// The wrapped scheduler (e.g. to read a `CheckedScheduler`'s
    /// violation list after a chaos campaign).
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Lifetime cells consumed by injected faults before admission.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Lifetime cells offered to the switch: admitted plus fault-dropped.
    pub fn offered(&self) -> u64 {
        self.admitted_total + self.dropped
    }

    /// Lifetime cells admitted into the VOQs (offered minus fault drops).
    pub fn admitted(&self) -> u64 {
        self.admitted_total
    }

    /// Lifetime cells transmitted through the crossbar — the cheap counter
    /// chaos drivers difference per slot for windowed throughput.
    pub fn departed(&self) -> u64 {
        self.departed_total
    }

    /// Lifetime fault drops charged to pair `(i, j)`.
    pub fn pair_drops(&self, i: usize, j: usize) -> u64 {
        assert!(i < self.n && j < self.n, "pair ({i},{j}) out of range");
        u64::from(self.pairs[i * self.n + j].dropped)
    }

    /// The O(1) conservation ledger: every cell ever offered to the switch
    /// is admitted or fault-dropped, and every admitted cell has departed
    /// or is still queued. Holds after every slot, faulted or not.
    ///
    /// # Errors
    ///
    /// Returns a description of the imbalance when the ledger is violated.
    pub fn verify_conservation(&self) -> Result<(), String> {
        let expect = self.departed_total + self.queued as u64;
        if self.admitted_total != expect {
            return Err(format!(
                "conservation violated: {} admitted != {} departed + {} queued",
                self.admitted_total, self.departed_total, self.queued
            ));
        }
        Ok(())
    }

    /// The O(n^2) half of the drop ledger: the per-pair drop counters must
    /// sum to the engine total. Intended for end-of-run audits, not the
    /// slot loop.
    ///
    /// # Errors
    ///
    /// Returns a description of the imbalance when a per-pair counter and
    /// the total disagree.
    pub fn verify_drop_ledger(&self) -> Result<(), String> {
        let per_pair: u64 = self.pairs.iter().map(|q| u64::from(q.dropped)).sum();
        if per_pair != self.dropped {
            return Err(format!(
                "drop ledger violated: per-pair drops sum to {per_pair} \
                 but the engine counted {}",
                self.dropped
            ));
        }
        Ok(())
    }

    /// The streaming quantile sketch over measured delays (same samples as
    /// the exact histogram in [`SwitchReport::delay`]).
    pub fn quantiles(&self) -> &QuantileSketch {
        &self.sketch
    }

    /// Input–output pairs with at least one queued cell — the active-pair
    /// count the sparse scheduling path sizes its work by. O(1): the
    /// request matrix maintains the count incrementally on every
    /// enqueue/drain transition.
    pub fn active_pairs(&self) -> usize {
        self.requests.len()
    }

    /// Advances one cell slot: arrivals join their pair FIFOs, the
    /// scheduler computes a matching, matched pairs each transmit their
    /// head-of-queue cell.
    ///
    /// # Panics
    ///
    /// Panics if two arrivals share an input, any port is out of range, or
    /// an arrival's flow id is not `FlowId::for_pair` for its pair.
    // an2-lint: hot
    pub fn step_slot(&mut self, arrivals: &[Arrival]) {
        let none = PortSetN::<W>::new();
        self.advance(arrivals, &none, &none, false, None);
    }

    /// Advances one slot under a fault plan: applies the plan's events due
    /// this slot (masking ports, losing arrivals, suspending scheduling
    /// during clock drift), then runs the ordinary arrival/schedule/
    /// transmit sequence, recording every applied fault and lost cell in
    /// `log`.
    ///
    /// Same semantics as the scalar
    /// [`CrossbarSwitch::step_faulted`](crate::switch::CrossbarSwitch::step_faulted):
    /// the `switch` tag on events is ignored (build per-switch plans when
    /// driving several switches), failed ports keep *buffering* arrivals —
    /// the mask only gates scheduling — and with an empty plan the slot is
    /// bit-identical to [`BatchCrossbar::step_slot`] (pinned by
    /// `tests/batch_faults.rs` at N ∈ {64, 256, 1024}).
    ///
    /// # Panics
    ///
    /// Panics on the usual arrival violations, or if an event names a port
    /// outside the switch.
    // an2-lint: hot
    pub fn step_faulted(&mut self, arrivals: &[Arrival], plan: &mut FaultPlan, log: &mut FaultLog) {
        let slot = self.slot;
        let mut injected = PortSetN::<W>::new();
        let mut corrupted = PortSetN::<W>::new();
        let mut mask_changed = false;
        for ev in plan.due(slot) {
            match ev.kind {
                FaultKind::LinkDown { output, .. } => {
                    mask_changed |= self.mask.fail_output(output);
                }
                FaultKind::LinkUp { output, .. } => {
                    mask_changed |= self.mask.recover_output(output);
                }
                FaultKind::PortFail { side, port, .. } => {
                    mask_changed |= match side {
                        PortSide::Input => self.mask.fail_input(port),
                        PortSide::Output => self.mask.fail_output(port),
                    };
                }
                FaultKind::PortRecover { side, port, .. } => {
                    mask_changed |= match side {
                        PortSide::Input => self.mask.recover_input(port),
                        PortSide::Output => self.mask.recover_output(port),
                    };
                }
                FaultKind::CellDrop { input, .. } => {
                    injected.insert(input);
                }
                FaultKind::CellCorrupt { input, .. } => {
                    corrupted.insert(input);
                }
                FaultKind::ClockDrift { slots, .. } => {
                    self.drift_until = self.drift_until.max(slot.saturating_add(slots));
                }
            }
            log.record_applied(*ev);
        }
        if mask_changed {
            self.scheduler.set_port_mask(self.mask);
        }
        let skip_schedule = slot < self.drift_until;
        self.advance(arrivals, &injected, &corrupted, skip_schedule, Some(log));
    }

    /// The per-slot engine shared by [`BatchCrossbar::step_slot`] (no
    /// faults) and [`BatchCrossbar::step_faulted`].
    // an2-lint: hot
    // an2-lint: allow(overflow-discipline) slot and delivery counters are monotone u64; delays are slot - inject_slot >= 0 by injection order
    // an2-lint: allow(panic-freedom) matched pairs come from the scheduler, so all indices are < n
    fn advance(
        &mut self,
        arrivals: &[Arrival],
        injected: &PortSetN<W>,
        corrupted: &PortSetN<W>,
        skip_schedule: bool,
        mut log: Option<&mut FaultLog>,
    ) {
        let slot = self.slot;
        assert!(slot < u32::MAX as u64, "batch engine caps runs at 2^32 slots");
        let n = self.n;
        // Warming sweep: the slot's arrivals address random pair records,
        // and the update loop below chains a dependent load into each one.
        // Reading the records first issues the misses as independent loads
        // the core overlaps, so the updates hit L1. (A prefetch intrinsic
        // would need unsafe; a black-boxed read is the safe equivalent.)
        let mut warm = 0u32;
        for a in arrivals {
            let p = a.input.index().wrapping_mul(n) + a.output.index();
            warm = warm.wrapping_add(self.pairs.get(p).map_or(0, |q| q.len));
        }
        std::hint::black_box(warm);
        let mut seen = PortSetN::<W>::new();
        for a in arrivals {
            let (i, j) = (a.input.index(), a.output.index());
            assert!(
                i < n && j < n,
                "arrival ({},{}) outside {n}x{n} switch",
                a.input,
                a.output
            );
            assert!(
                seen.insert(i),
                "two cells arrived at input {} in one slot",
                a.input
            );
            assert!(
                a.flow == FlowId::for_pair(n, a.input, a.output),
                "flow {} is not the pair flow of ({},{}): \
                 BatchCrossbar requires one flow per pair; use CrossbarSwitch",
                a.flow,
                a.input,
                a.output
            );
            let p = i * n + j;
            // A scripted fault consumes the arrival on the wire: charged to
            // the drop ledger instead of the pair FIFO. Failed ports still
            // buffer (the mask only gates scheduling), matching the scalar
            // engine's semantics.
            let lost = if injected.contains(i) {
                Some(DropCause::Injected)
            } else if corrupted.contains(i) {
                Some(DropCause::Corrupted)
            } else {
                None
            };
            if let Some(cause) = lost {
                self.pairs[p].dropped += 1;
                self.dropped += 1;
                if let Some(log) = log.as_deref_mut() {
                    log.record_drop(slot, 0, i, a.flow.0, cause);
                }
                continue;
            }
            let q = &mut self.pairs[p];
            if q.len == 0 {
                self.requests.set(a.input, a.output);
            }
            q.enqueue(slot as u32);
            self.queued += 1;
            self.arrivals += 1;
            self.admitted_total += 1;
        }
        if skip_schedule {
            // Clock drift: the crossbar cannot schedule; queues only grow.
            self.peak_occupancy = self.peak_occupancy.max(self.queued);
            self.slot += 1;
            return;
        }
        // Idle-slot skip: with zero active pairs (O(1) from the request
        // matrix's incremental counter) and a scheduler that declares the
        // idle call a no-op, the slot's matching is known empty without
        // invoking the scheduler at all. `step_faulted` funnels through
        // here too, so masked/degraded slots take the same sparse path
        // (the mask never adds requests, only removes candidates).
        let matching = if self.requests.is_empty() && self.scheduler.idle_slot_is_noop() {
            MatchingN::new(n)
        } else {
            self.scheduler.schedule(&self.requests)
        };
        debug_assert!(
            matching.respects(&self.requests),
            "{} scheduled a pair with no queued cell",
            self.scheduler.name()
        );
        // Same warming sweep for the matched pairs' records.
        let mut warm = 0u32;
        for (i, j) in matching.pairs() {
            warm = warm.wrapping_add(self.pairs[i.index() * n + j.index()].len);
        }
        std::hint::black_box(warm);
        for (i, j) in matching.pairs() {
            let p = i.index() * n + j.index();
            let q = &mut self.pairs[p];
            let at = q.dequeue() as u64;
            q.count += 1;
            if q.len == 0 {
                self.requests.clear(i, j);
            }
            self.queued -= 1;
            self.departures += 1;
            self.departed_total += 1;
            self.per_output[j.index()] += 1;
            if at >= self.measure_start {
                let d = slot - at;
                self.delay.record(d);
                self.sketch.record(d);
            }
        }
        self.peak_occupancy = self.peak_occupancy.max(self.queued);
        self.slot += 1;
    }
}

impl<const W: usize, S: Scheduler<W>> SwitchModel for BatchCrossbar<S, W> {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> &'static str {
        "batch-crossbar"
    }

    fn step(&mut self, arrivals: &[Arrival]) {
        self.step_slot(arrivals);
    }

    fn queued(&self) -> usize {
        self.queued
    }

    fn start_measurement(&mut self) {
        self.measure_start = self.slot;
        self.arrivals = 0;
        self.departures = 0;
        self.per_output.fill(0);
        for q in &mut self.pairs {
            q.count = 0;
        }
        self.delay = DelayStats::new();
        self.sketch = QuantileSketch::new();
        self.peak_occupancy = 0;
    }

    fn report(&self) -> SwitchReport {
        let mut per_flow = Vec::new();
        for (p, q) in self.pairs.iter().enumerate() {
            if q.count > 0 {
                per_flow.push((p as u64, q.count));
            }
        }
        SwitchReport {
            delay: self.delay.clone(),
            slots: self.slot - self.measure_start,
            arrivals: self.arrivals,
            departures: self.departures,
            departures_per_output: self.per_output.clone(),
            departures_per_flow: per_flow,
            peak_occupancy: self.peak_occupancy,
            final_occupancy: self.queued,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, SimConfig};
    use crate::switch::CrossbarSwitch;
    use crate::traffic::RateMatrixTraffic;
    use an2_sched::islip::RoundRobinMatching;
    use an2_sched::Pim;

    #[test]
    fn pair_queue_fifo_order_across_spill_and_growth() {
        // 100 cells crosses inline -> spill (at 8) and several doublings;
        // interleaved dequeues exercise the wrapped-ring compaction.
        let mut r = PairQueue::default();
        for v in 0..100u32 {
            r.enqueue(v);
        }
        for v in 0..50u32 {
            assert_eq!(r.dequeue(), v);
        }
        for v in 100..200u32 {
            r.enqueue(v);
        }
        for v in 50..200u32 {
            assert_eq!(r.dequeue(), v);
        }
        assert_eq!(r.len, 0);
    }

    #[test]
    fn pair_queue_inline_only_never_allocates_spill() {
        let mut r = PairQueue::default();
        // Stay at depth <= QUEUE_INLINE across many operations.
        for round in 0..50u32 {
            for v in 0..QUEUE_INLINE as u32 {
                r.enqueue(round * 100 + v);
            }
            for v in 0..QUEUE_INLINE as u32 {
                assert_eq!(r.dequeue(), round * 100 + v);
            }
        }
        assert!(r.spill.is_empty(), "shallow queue must not spill");
    }

    fn reports_match(a: &SwitchReport, b: &SwitchReport) {
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.departures, b.departures);
        assert_eq!(a.departures_per_output, b.departures_per_output);
        assert_eq!(a.departures_per_flow, b.departures_per_flow);
        assert_eq!(a.peak_occupancy, b.peak_occupancy);
        assert_eq!(a.final_occupancy, b.final_occupancy);
        assert_eq!(a.delay, b.delay);
    }

    #[test]
    fn matches_scalar_engine_pim() {
        let mut batch = BatchCrossbar::new(8, Pim::new(8, 42));
        let mut scalar = CrossbarSwitch::new(Pim::new(8, 42));
        let cfg = SimConfig {
            warmup_slots: 100,
            measure_slots: 1000,
        };
        let rb = simulate(&mut batch, &mut RateMatrixTraffic::uniform(8, 0.9, 7), cfg);
        let rs = simulate(&mut scalar, &mut RateMatrixTraffic::uniform(8, 0.9, 7), cfg);
        reports_match(&rb, &rs);
    }

    #[test]
    fn matches_scalar_engine_islip() {
        let mut batch = BatchCrossbar::new(16, RoundRobinMatching::islip(16, 4));
        let mut scalar = CrossbarSwitch::new(RoundRobinMatching::islip(16, 4));
        let cfg = SimConfig {
            warmup_slots: 50,
            measure_slots: 500,
        };
        let rb = simulate(&mut batch, &mut RateMatrixTraffic::uniform(16, 1.0, 9), cfg);
        let rs = simulate(&mut scalar, &mut RateMatrixTraffic::uniform(16, 1.0, 9), cfg);
        reports_match(&rb, &rs);
    }

    #[test]
    fn conserves_cells_over_full_window() {
        let mut batch = BatchCrossbar::new(8, Pim::new(8, 3));
        let cfg = SimConfig {
            warmup_slots: 0,
            measure_slots: 2000,
        };
        let r = simulate(&mut batch, &mut RateMatrixTraffic::uniform(8, 0.7, 5), cfg);
        assert!(r.is_conserved());
    }

    #[test]
    fn sketch_tracks_exact_histogram() {
        let mut batch = BatchCrossbar::new(8, Pim::new(8, 3));
        let cfg = SimConfig {
            warmup_slots: 200,
            measure_slots: 2000,
        };
        let r = simulate(&mut batch, &mut RateMatrixTraffic::uniform(8, 0.9, 5), cfg);
        let q = batch.quantiles();
        assert_eq!(q.count(), r.delay.count());
        assert_eq!(q.max(), r.delay.max());
        let (approx, exact) = (q.quantile(0.99), r.delay.percentile(0.99));
        assert!(approx <= exact && exact - approx <= approx / 8 + 1);
    }

    #[test]
    fn wide_width_runs_n_512() {
        // Smoke: the W=16 instantiation schedules beyond the narrow cap.
        use an2_sched::WidePim;
        let mut batch: BatchCrossbar<_, 16> = BatchCrossbar::new(512, WidePim::new(512, 11));
        let cfg = SimConfig {
            warmup_slots: 0,
            measure_slots: 50,
        };
        let r = simulate(&mut batch, &mut RateMatrixTraffic::uniform(512, 0.3, 2), cfg);
        assert!(r.is_conserved());
        assert!(r.departures > 0);
    }

    #[test]
    #[should_panic(expected = "one flow per pair")]
    fn non_pair_flow_panics() {
        let mut batch = BatchCrossbar::new(4, Pim::new(4, 1));
        let mut a = Arrival::pair(
            4,
            an2_sched::InputPort::new(0),
            an2_sched::OutputPort::new(1),
        );
        a.flow = FlowId(99);
        batch.step_slot(&[a]);
    }

    #[test]
    #[should_panic(expected = "two cells arrived")]
    fn duplicate_input_panics() {
        let mut batch = BatchCrossbar::new(4, Pim::new(4, 1));
        let a = Arrival::pair(
            4,
            an2_sched::InputPort::new(0),
            an2_sched::OutputPort::new(1),
        );
        batch.step_slot(&[a, a]);
    }
}
