//! The [`SwitchModel`] trait and shared measurement plumbing.
//!
//! All three switch organizations the paper compares (§3.5) — input
//! queueing with a crossbar scheduler, FIFO input queueing, and perfect
//! output queueing — advance in lockstep cell slots behind this trait, so
//! the simulation driver and the experiment harness treat them uniformly.

use crate::cell::{Arrival, Cell};
use crate::metrics::{DelayStats, SwitchReport};
use an2_sched::det::DetHashMap;

/// A switch simulated slot-by-slot.
///
/// A step consists of: accept this slot's arrivals (at most one per
/// input), choose departures subject to the model's constraints (at most
/// one per output; for input-queued models also at most one per input),
/// and retire them. Cells are never dropped — the AN2 design point (§2.4).
pub trait SwitchModel {
    /// The switch radix.
    fn n(&self) -> usize;

    /// A short label for reports.
    fn name(&self) -> &'static str;

    /// Advances one time slot.
    ///
    /// # Panics
    ///
    /// Panics if two arrivals share an input or any port is out of range.
    fn step(&mut self, arrivals: &[Arrival]);

    /// Cells currently buffered in the switch.
    fn queued(&self) -> usize;

    /// Starts the measurement window: statistics collected so far are
    /// discarded, queues are kept (warmup truncation).
    fn start_measurement(&mut self);

    /// The statistics collected since [`start_measurement`](SwitchModel::start_measurement)
    /// (or construction, if never called).
    fn report(&self) -> SwitchReport;
}

/// Shared measurement bookkeeping for switch models.
///
/// Delay is recorded at departure, only for cells that *arrived* during
/// the measurement window (standard warmup truncation — cells already
/// queued at warmup's end carry transient state).
#[derive(Clone, Debug)]
pub(crate) struct ModelMetrics {
    n: usize,
    slot: u64,
    measure_start: u64,
    arrivals: u64,
    departures: u64,
    per_output: Vec<u64>,
    per_flow: DetHashMap<u64, u64>,
    delay: DelayStats,
    peak_occupancy: usize,
}

impl ModelMetrics {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            n,
            slot: 0,
            measure_start: 0,
            arrivals: 0,
            departures: 0,
            per_output: vec![0; n],
            per_flow: DetHashMap::default(),
            delay: DelayStats::new(),
            peak_occupancy: 0,
        }
    }

    /// The current slot number (slots completed so far).
    pub(crate) fn slot(&self) -> u64 {
        self.slot
    }

    pub(crate) fn restart(&mut self) {
        self.measure_start = self.slot;
        self.arrivals = 0;
        self.departures = 0;
        self.per_output = vec![0; self.n];
        self.per_flow.clear();
        self.delay = DelayStats::new();
        self.peak_occupancy = 0;
    }

    pub(crate) fn on_arrival(&mut self) {
        self.arrivals += 1;
    }

    pub(crate) fn on_departure(&mut self, cell: &Cell) {
        self.departures += 1;
        self.per_output[cell.output.index()] += 1;
        *self.per_flow.entry(cell.flow.0).or_insert(0) += 1;
        if cell.arrival_slot >= self.measure_start {
            self.delay.record(self.slot - cell.arrival_slot);
        }
    }

    /// Called once per slot after departures, with the post-slot occupancy.
    pub(crate) fn end_slot(&mut self, occupancy: usize) {
        self.peak_occupancy = self.peak_occupancy.max(occupancy);
        self.slot += 1;
    }

    pub(crate) fn report(&self, final_occupancy: usize) -> SwitchReport {
        let mut per_flow: Vec<(u64, u64)> =
            self.per_flow.iter().map(|(&f, &c)| (f, c)).collect();
        per_flow.sort_unstable();
        SwitchReport {
            delay: self.delay.clone(),
            slots: self.slot - self.measure_start,
            arrivals: self.arrivals,
            departures: self.departures,
            departures_per_output: self.per_output.clone(),
            departures_per_flow: per_flow,
            peak_occupancy: self.peak_occupancy,
            final_occupancy,
        }
    }
}

/// Validates the per-slot arrival constraints shared by all models.
///
/// # Panics
///
/// Panics if two arrivals share an input or any port index is `>= n`.
pub(crate) fn validate_arrivals(n: usize, arrivals: &[Arrival]) {
    let mut seen = an2_sched::PortSet::new();
    for a in arrivals {
        assert!(
            a.input.index() < n && a.output.index() < n,
            "arrival ({},{}) outside {n}x{n} switch",
            a.input,
            a.output
        );
        assert!(
            seen.insert(a.input.index()),
            "two cells arrived at input {} in one slot",
            a.input
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use an2_sched::{InputPort, OutputPort};

    #[test]
    fn metrics_window_truncates_warmup_cells() {
        let mut m = ModelMetrics::new(2);
        let pre = Arrival::pair(2, InputPort::new(0), OutputPort::new(1)).into_cell(0);
        m.on_arrival();
        m.end_slot(1);
        m.restart(); // measurement starts at slot 1
        // The warmup cell departs at slot 3: counted as a departure but not
        // in the delay statistics.
        m.end_slot(1);
        m.end_slot(1);
        m.on_departure(&pre);
        m.end_slot(0);
        let post = Arrival::pair(2, InputPort::new(0), OutputPort::new(1)).into_cell(4);
        m.on_arrival();
        m.on_departure(&post);
        m.end_slot(0);
        let r = m.report(0);
        assert_eq!(r.departures, 2);
        assert_eq!(r.delay.count(), 1);
        assert_eq!(r.delay.max(), 0);
        assert_eq!(r.slots, 4);
        assert_eq!(r.arrivals, 1);
    }

    #[test]
    fn per_flow_accounting_is_sorted() {
        let mut m = ModelMetrics::new(4);
        let c1 = Arrival::pair(4, InputPort::new(3), OutputPort::new(0)).into_cell(0);
        let c2 = Arrival::pair(4, InputPort::new(0), OutputPort::new(1)).into_cell(0);
        m.on_departure(&c1);
        m.on_departure(&c2);
        m.on_departure(&c2);
        m.end_slot(0);
        let r = m.report(0);
        assert_eq!(r.departures_per_flow, vec![(1, 2), (12, 1)]);
    }

    #[test]
    #[should_panic(expected = "two cells arrived")]
    fn duplicate_input_arrivals_panic() {
        let a = Arrival::pair(2, InputPort::new(0), OutputPort::new(1));
        validate_arrivals(2, &[a, a]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_arrival_panics() {
        let a = Arrival::pair(8, InputPort::new(5), OutputPort::new(1));
        validate_arrivals(2, &[a]);
    }
}
