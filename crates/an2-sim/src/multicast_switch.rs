//! A multicast-capable input-queued switch (the §2 capability the paper
//! defers).
//!
//! Each input keeps a FIFO of multicast cells; the head cell's residual
//! fanout competes each slot under multicast PIM
//! ([`an2_sched::multicast::McPim`]). A crossbar can drive many outputs
//! from one input simultaneously, so a cell with fanout `k` can finish in
//! a single slot when uncontended — where a unicast-only switch would
//! serialize `k` copies through one input link over `k` slots.

use crate::cell::FlowId;
use crate::metrics::DelayStats;
use an2_sched::multicast::{FanoutRequests, McPim};
use an2_sched::{InputPort, PortSet};
use std::collections::VecDeque;

/// A multicast cell: one payload bound for a set of outputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct McCell {
    /// The flow the cell belongs to.
    pub flow: FlowId,
    /// The input it arrived on.
    pub input: InputPort,
    /// The outputs it must reach.
    pub fanout: PortSet,
    /// The slot it arrived in.
    pub arrival_slot: u64,
}

/// An arriving multicast cell (one per input per slot at most).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct McArrival {
    /// The input the cell arrives on.
    pub input: InputPort,
    /// The outputs it must reach.
    pub fanout: PortSet,
    /// Its flow.
    pub flow: FlowId,
}

/// Head cell currently in (possibly partial) service at one input.
#[derive(Clone, Debug)]
struct InService {
    cell: McCell,
    residue: PortSet,
}

/// The multicast switch model.
///
/// # Examples
///
/// ```
/// use an2_sched::{InputPort, PortSet};
/// use an2_sim::cell::FlowId;
/// use an2_sim::multicast_switch::{McArrival, MulticastSwitch};
///
/// let mut sw = MulticastSwitch::new(4, 9);
/// sw.step(&[McArrival {
///     input: InputPort::new(0),
///     fanout: [1usize, 2, 3].into_iter().collect(),
///     flow: FlowId(1),
/// }]);
/// // Uncontended: the whole fanout went out in one slot.
/// assert_eq!(sw.completed(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct MulticastSwitch {
    n: usize,
    queues: Vec<VecDeque<McCell>>,
    in_service: Vec<Option<InService>>,
    scheduler: McPim,
    slot: u64,
    completed: u64,
    copies: u64,
    copies_per_output: Vec<u64>,
    completion_delay: DelayStats,
}

impl MulticastSwitch {
    /// Creates an `n`-port multicast switch.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > MAX_PORTS`.
    pub fn new(n: usize, seed: u64) -> Self {
        Self {
            n,
            queues: vec![VecDeque::new(); n],
            in_service: vec![None; n],
            scheduler: McPim::new(n, seed),
            slot: 0,
            completed: 0,
            copies: 0,
            copies_per_output: vec![0; n],
            completion_delay: DelayStats::new(),
        }
    }

    /// The switch radix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Multicast cells fully delivered so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Total copies (cell × output) delivered so far.
    pub fn copies(&self) -> u64 {
        self.copies
    }

    /// Copies delivered out of output `j`.
    pub fn copies_of_output(&self, j: usize) -> u64 {
        assert!(j < self.n, "output {j} outside switch");
        self.copies_per_output[j]
    }

    /// Completion delay statistics (arrival to final copy) in slots.
    pub fn completion_delay(&self) -> &DelayStats {
        &self.completion_delay
    }

    /// Cells queued or in partial service.
    pub fn queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum::<usize>()
            + self.in_service.iter().flatten().count()
    }

    /// Advances one slot.
    ///
    /// # Panics
    ///
    /// Panics if two arrivals share an input, a fanout is empty, or any
    /// port is out of range.
    pub fn step(&mut self, arrivals: &[McArrival]) {
        let mut seen = PortSet::new();
        for a in arrivals {
            assert!(a.input.index() < self.n, "input {} outside switch", a.input);
            assert!(
                seen.insert(a.input.index()),
                "two cells arrived at input {} in one slot",
                a.input
            );
            assert!(!a.fanout.is_empty(), "multicast cells need a non-empty fanout");
            assert!(
                a.fanout.iter().all(|j| j < self.n),
                "fanout of input {} contains an output outside the switch",
                a.input
            );
            self.queues[a.input.index()].push_back(McCell {
                flow: a.flow,
                input: a.input,
                fanout: a.fanout,
                arrival_slot: self.slot,
            });
        }
        // Promote head cells into service.
        for i in 0..self.n {
            if self.in_service[i].is_none() {
                if let Some(cell) = self.queues[i].pop_front() {
                    self.in_service[i] = Some(InService {
                        cell,
                        residue: cell.fanout,
                    });
                }
            }
        }
        // Schedule residual fanouts.
        let mut requests = FanoutRequests::new(self.n);
        for i in 0..self.n {
            if let Some(s) = &self.in_service[i] {
                requests.set(InputPort::new(i), s.residue);
            }
        }
        let m = self.scheduler.schedule(&requests);
        debug_assert!(m.respects(&requests));
        for i in 0..self.n {
            let served = *m.served(InputPort::new(i));
            if served.is_empty() {
                continue;
            }
            let svc = self.in_service[i]
                .as_mut()
                .expect("served inputs have a cell in service");
            svc.residue = svc.residue.difference(&served);
            self.copies += served.len() as u64;
            for j in served.iter() {
                self.copies_per_output[j] += 1;
            }
            if svc.residue.is_empty() {
                self.completed += 1;
                self.completion_delay
                    .record(self.slot - svc.cell.arrival_slot);
                self.in_service[i] = None;
            }
        }
        self.slot += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(n: usize, i: usize, outs: &[usize], flow: u64) -> McArrival {
        let _ = n;
        McArrival {
            input: InputPort::new(i),
            fanout: outs.iter().copied().collect(),
            flow: FlowId(flow),
        }
    }

    #[test]
    fn uncontended_fanout_completes_in_one_slot() {
        let mut sw = MulticastSwitch::new(8, 1);
        sw.step(&[arrival(8, 2, &[0, 3, 5, 7], 1)]);
        assert_eq!(sw.completed(), 1);
        assert_eq!(sw.copies(), 4);
        assert_eq!(sw.completion_delay().max(), 0);
        assert_eq!(sw.queued(), 0);
    }

    #[test]
    fn multicast_beats_serialized_unicast_copies() {
        // Broadcast from one input to all 8 outputs: multicast finishes in
        // 1 slot; sending 8 unicast copies through one input link takes 8.
        let mut sw = MulticastSwitch::new(8, 2);
        sw.step(&[arrival(8, 0, &[0, 1, 2, 3, 4, 5, 6, 7], 1)]);
        assert_eq!(sw.completed(), 1);
        assert_eq!(sw.completion_delay().max(), 0);
        // The unicast equivalent: the input link serializes.
        use crate::switch::CrossbarSwitch;
        use crate::model::SwitchModel;
        use an2_sched::Pim;
        let mut uni = CrossbarSwitch::new(Pim::new(8, 3));
        let copies: Vec<crate::cell::Arrival> = (0..8)
            .map(|j| crate::cell::Arrival::pair(8, InputPort::new(0), an2_sched::OutputPort::new(j)))
            .collect();
        assert_eq!(uni.preload(&copies), 0);
        let mut slots = 0;
        while uni.queued() > 0 {
            uni.step(&[]);
            slots += 1;
        }
        assert_eq!(slots, 8, "unicast copies serialize through the input link");
    }

    #[test]
    fn contended_outputs_split_fairly() {
        // Four inputs each broadcast to all four outputs, continuously.
        let n = 4;
        let mut sw = MulticastSwitch::new(n, 5);
        let slots = 8_000u64;
        for s in 0..slots {
            let arrivals: Vec<McArrival> = (0..n)
                .filter(|&i| sw.queues[i].len() < 4) // keep queues bounded
                .map(|i| arrival(n, i, &[0, 1, 2, 3], s * 10 + i as u64))
                .collect();
            sw.step(&arrivals);
        }
        // Output links run at full rate.
        for j in 0..n {
            let util = sw.copies_of_output(j) as f64 / slots as f64;
            assert!(util > 0.99, "output {j} utilization {util}");
        }
        // Each cell needs all 4 outputs against 3 competitors, and up to
        // 4 more cells queue behind it: service is roughly a max of four
        // geometric(1/4) draws (~8 slots) plus the queue wait, so the
        // mean completion delay is a few tens of slots — bounded, because
        // fanout splitting makes steady progress every slot.
        assert!(
            sw.completion_delay().mean() < 64.0,
            "mean completion delay {}",
            sw.completion_delay().mean()
        );
        // Aggregate service matches the link capacity: 4 copies per slot
        // across the switch = 1 completed broadcast per slot.
        let rate = sw.completed() as f64 / slots as f64;
        assert!((rate - 1.0).abs() < 0.05, "completion rate {rate}");
    }

    #[test]
    fn conservation_copies_match_completions() {
        let n = 4;
        let mut sw = MulticastSwitch::new(n, 7);
        use an2_sched::rng::{SelectRng, Xoshiro256};
        let mut rng = Xoshiro256::seed_from(8);
        let mut offered_copies = 0u64;
        for s in 0..2_000u64 {
            let mut batch = Vec::new();
            for i in 0..n {
                if sw.queues[i].len() < 2 && rng.bernoulli(0.3) {
                    let fan: PortSet = (0..n).filter(|_| rng.bernoulli(0.5)).collect();
                    if !fan.is_empty() {
                        offered_copies += fan.len() as u64;
                        batch.push(McArrival {
                            input: InputPort::new(i),
                            fanout: fan,
                            flow: FlowId(s),
                        });
                    }
                }
            }
            sw.step(&batch);
        }
        // Drain.
        let mut guard = 0;
        while sw.queued() > 0 {
            sw.step(&[]);
            guard += 1;
            assert!(guard < 10_000, "drain failed");
        }
        assert_eq!(sw.copies(), offered_copies);
    }

    #[test]
    #[should_panic(expected = "non-empty fanout")]
    fn empty_fanout_panics() {
        let mut sw = MulticastSwitch::new(4, 0);
        sw.step(&[McArrival {
            input: InputPort::new(0),
            fanout: PortSet::new(),
            flow: FlowId(1),
        }]);
    }
}
