//! Physical-time conversions for cell slots.
//!
//! All simulation results are in units of *cell time slots* — the time for
//! one fixed-length cell to arrive at link speed, which is also the crossbar
//! reconfiguration period (§2.3). This module converts slots to wall-clock
//! time for the paper's physical claims: a 53-byte ATM cell on a 1 Gbit/s
//! link lasts 424 ns, so a 16×16 switch schedules over 37 million cells per
//! second, and "less than 13 μs" mean delay at 95% load is ≈30 slots.

/// Bytes in a standard ATM cell (5-byte header + 48-byte payload), §2.3.
pub const ATM_CELL_BYTES: u32 = 53;

/// Bytes of cell header in a standard ATM cell.
pub const ATM_HEADER_BYTES: u32 = 5;

/// The AN2 prototype's switch radix.
pub const AN2_PORTS: usize = 16;

/// The AN2 prototype's frame length in slots (§4).
pub const AN2_FRAME_SLOTS: usize = 1000;

/// A link's line rate.
///
/// # Examples
///
/// ```
/// use an2_sim::units::LinkRate;
/// let an2 = LinkRate::an2();
/// assert!((an2.cell_time_ns() - 424.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkRate {
    bits_per_sec: f64,
}

impl LinkRate {
    /// Creates a link rate from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sec` is not strictly positive and finite.
    pub fn from_bits_per_sec(bits_per_sec: f64) -> Self {
        assert!(
            bits_per_sec.is_finite() && bits_per_sec > 0.0,
            "link rate must be positive"
        );
        Self { bits_per_sec }
    }

    /// Creates a link rate from gigabits per second.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not strictly positive and finite.
    pub fn from_gbps(gbps: f64) -> Self {
        Self::from_bits_per_sec(gbps * 1e9)
    }

    /// The AN2 design point: 1.0 Gbit/s fiber links.
    pub fn an2() -> Self {
        Self::from_gbps(1.0)
    }

    /// Line rate in bits per second.
    pub fn bits_per_sec(self) -> f64 {
        self.bits_per_sec
    }

    /// Duration of one 53-byte cell slot in nanoseconds.
    pub fn cell_time_ns(self) -> f64 {
        ATM_CELL_BYTES as f64 * 8.0 / self.bits_per_sec * 1e9
    }

    /// Cells per second on one link.
    pub fn cells_per_sec(self) -> f64 {
        self.bits_per_sec / (ATM_CELL_BYTES as f64 * 8.0)
    }

    /// Aggregate scheduling rate for an `n`-port switch (cells/second the
    /// scheduler must pair) — the paper's "over 37 million cells per
    /// second" for 16 ports at 1 Gbit/s.
    pub fn aggregate_cells_per_sec(self, n: usize) -> f64 {
        self.cells_per_sec() * n as f64
    }

    /// Converts a delay in slots to microseconds at this link rate.
    pub fn slots_to_micros(self, slots: f64) -> f64 {
        slots * self.cell_time_ns() / 1000.0
    }

    /// Fraction of the line rate consumed by cell headers (§2.3 overhead).
    pub fn header_overhead() -> f64 {
        ATM_HEADER_BYTES as f64 / ATM_CELL_BYTES as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an2_cell_time_is_424ns() {
        assert!((LinkRate::an2().cell_time_ns() - 424.0).abs() < 1e-9);
    }

    #[test]
    fn an2_schedules_over_37_million_cells_per_sec() {
        let rate = LinkRate::an2().aggregate_cells_per_sec(AN2_PORTS);
        assert!(rate > 37.0e6, "aggregate rate {rate}");
        assert!(rate < 38.0e6, "aggregate rate {rate}");
    }

    #[test]
    fn thirteen_micros_is_about_thirty_slots() {
        // §3.5: "<13 usec" mean delay at 95% load. In slots that is ~30.6.
        let slots = 13.0 * 1000.0 / LinkRate::an2().cell_time_ns();
        assert!((slots - 30.66).abs() < 0.1, "slots {slots}");
        // And the inverse conversion agrees.
        let us = LinkRate::an2().slots_to_micros(30.66);
        assert!((us - 13.0).abs() < 0.01);
    }

    #[test]
    fn header_overhead_is_five_of_53() {
        assert!((LinkRate::header_overhead() - 5.0 / 53.0).abs() < 1e-12);
    }

    #[test]
    fn custom_rates_scale_linearly() {
        let half = LinkRate::from_gbps(0.5);
        assert!((half.cell_time_ns() - 848.0).abs() < 1e-9);
        assert!((half.cells_per_sec() * 2.0 - LinkRate::an2().cells_per_sec()).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = LinkRate::from_bits_per_sec(0.0);
    }
}
