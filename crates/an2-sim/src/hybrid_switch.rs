//! The full AN2 switch: pre-scheduled CBR frames plus PIM-filled VBR (§4).
//!
//! "CBR cells are routed across the switch during scheduled slots. VBR
//! cells are transmitted during slots not used by CBR cells. In addition,
//! VBR cells can use an allocated slot if no cell from the scheduled flow
//! is present at the switch." CBR cells use statically reserved buffers;
//! VBR cells use a separate pool (here, a second set of VOQs).
//!
//! Each slot `t` this model:
//! 1. takes the reserved matching for frame slot `t mod frame_len`,
//! 2. keeps only the reserved pairs that actually hold a queued CBR cell
//!    (idle reservations return their ports to the datagram pool), and
//! 3. extends the matching over the VBR request matrix with
//!    [`Pim::schedule_from`].

use crate::cell::{Arrival, Cell};
use crate::metrics::{DelayStats, SwitchReport};
use crate::model::{validate_arrivals, ModelMetrics, SwitchModel};
use crate::voq::VoqBuffers;
use an2_sched::{FrameSchedule, InputPort, Matching, OutputPort, Pim};

/// Which service class an arrival belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServiceClass {
    /// Constant bit rate: pre-scheduled, guaranteed (§4).
    Cbr,
    /// Variable bit rate (datagram): scheduled by PIM in leftover capacity.
    Vbr,
}

/// An arrival tagged with its service class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassedArrival {
    /// The cell.
    pub arrival: Arrival,
    /// Its service class.
    pub class: ServiceClass,
}

/// A switch carrying CBR reservations (frame schedule) and VBR datagrams
/// (PIM) side by side.
///
/// Implements [`SwitchModel`] for VBR traffic via `step` (all untagged
/// arrivals are VBR); CBR cells enter through
/// [`step_classed`](Self::step_classed).
///
/// # Examples
///
/// ```
/// use an2_sched::{FrameSchedule, InputPort, OutputPort};
/// use an2_sim::hybrid_switch::{ClassedArrival, HybridSwitch, ServiceClass};
/// use an2_sim::cell::Arrival;
///
/// let mut fs = FrameSchedule::new(4, 4);
/// fs.reserve(InputPort::new(0), OutputPort::new(1), 2).unwrap();
/// let mut sw = HybridSwitch::new(fs, 7);
/// let cbr = ClassedArrival {
///     arrival: Arrival::pair(4, InputPort::new(0), OutputPort::new(1)),
///     class: ServiceClass::Cbr,
/// };
/// sw.step_classed(&[cbr]);
/// ```
#[derive(Clone, Debug)]
pub struct HybridSwitch {
    schedule: FrameSchedule,
    pim: Pim,
    cbr: VoqBuffers,
    vbr: VoqBuffers,
    metrics: ModelMetrics,
    cbr_delay: DelayStats,
    cbr_departures: u64,
    vbr_departures: u64,
    /// Scratch: untagged arrivals re-tagged as VBR (reused across slots).
    plain: Vec<Arrival>,
    /// Scratch: reserved pairs actually carrying a CBR cell this slot.
    cbr_pairs: Vec<(InputPort, OutputPort)>,
    /// Scratch for [`SwitchModel::step`]'s class tagging.
    classed: Vec<ClassedArrival>,
}

impl HybridSwitch {
    /// Creates a hybrid switch around a CBR frame schedule; VBR traffic is
    /// filled in with run-to-completion PIM.
    pub fn new(schedule: FrameSchedule, seed: u64) -> Self {
        let n = schedule.n();
        Self {
            schedule,
            pim: Pim::with_options(
                n,
                seed,
                an2_sched::IterationLimit::ToCompletion,
                an2_sched::AcceptPolicy::Random,
            ),
            cbr: VoqBuffers::new(n),
            vbr: VoqBuffers::new(n),
            metrics: ModelMetrics::new(n),
            cbr_delay: DelayStats::new(),
            cbr_departures: 0,
            vbr_departures: 0,
            plain: Vec::new(),
            cbr_pairs: Vec::new(),
            classed: Vec::new(),
        }
    }

    /// The CBR frame schedule (e.g. to inspect reservations).
    pub fn schedule(&self) -> &FrameSchedule {
        &self.schedule
    }

    /// Mutable access to the frame schedule, for adding or releasing
    /// reservations between slots.
    pub fn schedule_mut(&mut self) -> &mut FrameSchedule {
        &mut self.schedule
    }

    /// Queued CBR cells.
    pub fn cbr_queued(&self) -> usize {
        self.cbr.len()
    }

    /// Queued VBR cells.
    pub fn vbr_queued(&self) -> usize {
        self.vbr.len()
    }

    /// Delay statistics of departed CBR cells (measurement window).
    pub fn cbr_delay(&self) -> &DelayStats {
        &self.cbr_delay
    }

    /// CBR and VBR departures since measurement started.
    pub fn departures_by_class(&self) -> (u64, u64) {
        (self.cbr_departures, self.vbr_departures)
    }

    /// Cells rejected at admission across both buffer pools (drop-tail
    /// under a finite capacity; 0 when unbounded). Part of the
    /// conservation ledger: offered = admitted arrivals + `drops()`.
    pub fn drops(&self) -> u64 {
        self.cbr.drops() + self.vbr.drops()
    }

    /// Advances one slot with class-tagged arrivals.
    ///
    /// # Panics
    ///
    /// Panics on the usual arrival violations (duplicate input, port out
    /// of range).
    pub fn step_classed(&mut self, arrivals: &[ClassedArrival]) {
        let slot = self.metrics.slot();
        self.plain.clear();
        self.plain.extend(arrivals.iter().map(|c| c.arrival));
        validate_arrivals(self.cbr.n(), &self.plain);
        for c in arrivals {
            let cell = c.arrival.into_cell(slot);
            let admitted = match c.class {
                ServiceClass::Cbr => self.cbr.push(cell),
                ServiceClass::Vbr => self.vbr.push(cell),
            };
            if admitted.is_admitted() {
                self.metrics.on_arrival();
            }
        }
        // Reserved matching for this frame slot, restricted to pairs with
        // a queued CBR cell.
        let frame_len = self.schedule.frame_len() as u64;
        let reserved = self.schedule.slot((slot % frame_len) as usize);
        let n = self.cbr.n();
        let mut initial = Matching::new(n);
        for (i, j) in reserved.pairs() {
            if self.cbr.pair_occupancy(i, j) > 0 {
                initial.pair(i, j).expect("subset of a legal matching");
            }
        }
        self.cbr_pairs.clear();
        self.cbr_pairs.extend(initial.pairs());
        // PIM fills everything else from the VBR requests.
        let vbr_requests = self.vbr.requests();
        let matching = self.pim.schedule_from(vbr_requests, initial);
        for (i, j) in matching.pairs() {
            if self.cbr_pairs.contains(&(i, j)) {
                let cell = self.cbr.pop(i, j).expect("occupancy checked above");
                self.record_departure(&cell, ServiceClass::Cbr, slot);
            } else {
                let cell = self
                    .vbr
                    .pop(i, j)
                    .expect("PIM fill respects the VBR request matrix");
                self.record_departure(&cell, ServiceClass::Vbr, slot);
            }
        }
        self.metrics.end_slot(self.queued());
    }

    fn record_departure(&mut self, cell: &Cell, class: ServiceClass, slot: u64) {
        self.metrics.on_departure(cell);
        match class {
            ServiceClass::Cbr => {
                self.cbr_departures += 1;
                self.cbr_delay.record(slot - cell.arrival_slot);
            }
            ServiceClass::Vbr => self.vbr_departures += 1,
        }
    }
}

impl SwitchModel for HybridSwitch {
    fn n(&self) -> usize {
        self.cbr.n()
    }

    fn name(&self) -> &'static str {
        "hybrid-cbr-vbr"
    }

    /// Untagged arrivals are treated as VBR datagrams.
    fn step(&mut self, arrivals: &[Arrival]) {
        // Take the scratch out so `step_classed` can borrow `self` freely.
        let mut classed = std::mem::take(&mut self.classed);
        classed.clear();
        classed.extend(arrivals.iter().map(|&arrival| ClassedArrival {
            arrival,
            class: ServiceClass::Vbr,
        }));
        self.step_classed(&classed);
        self.classed = classed;
    }

    fn queued(&self) -> usize {
        self.cbr.len() + self.vbr.len()
    }

    fn start_measurement(&mut self) {
        self.metrics.restart();
        self.cbr_delay = DelayStats::new();
        self.cbr_departures = 0;
        self.vbr_departures = 0;
    }

    fn report(&self) -> SwitchReport {
        self.metrics.report(self.queued())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use an2_sched::rng::{SelectRng, Xoshiro256};
    use an2_sched::{InputPort, OutputPort};

    fn classed(n: usize, i: usize, j: usize, class: ServiceClass) -> ClassedArrival {
        ClassedArrival {
            arrival: Arrival::pair(n, InputPort::new(i), OutputPort::new(j)),
            class,
        }
    }

    #[test]
    fn cbr_rides_its_reserved_slots() {
        let n = 4;
        let frame = 4;
        let mut fs = FrameSchedule::new(n, frame);
        fs.reserve(InputPort::new(0), OutputPort::new(1), 2).unwrap();
        let mut sw = HybridSwitch::new(fs, 1);
        // A *paced* CBR source (exactly the reserved 2 cells per 4-slot
        // frame — one every other slot, as a conforming application would
        // send) plus VBR flooding every input.
        let mut rng = Xoshiro256::seed_from(2);
        let slots = 20_000u64;
        for s in 0..slots {
            let mut batch = Vec::new();
            if s % 2 == 0 {
                batch.push(classed(n, 0, 1, ServiceClass::Cbr));
            }
            for i in 0..n {
                if batch.iter().any(|c| c.arrival.input.index() == i) {
                    continue;
                }
                batch.push(classed(n, i, rng.index(n), ServiceClass::Vbr));
            }
            sw.step_classed(&batch);
        }
        let (cbr_dep, vbr_dep) = sw.departures_by_class();
        let cbr_rate = cbr_dep as f64 / slots as f64;
        assert!((cbr_rate - 0.5).abs() < 0.01, "CBR rate {cbr_rate}");
        assert!(sw.cbr_queued() < 10, "CBR backlog {}", sw.cbr_queued());
        // A paced cell waits at most ~2 frames for its reserved slot (§4).
        assert!(
            sw.cbr_delay().max() <= 2 * frame as u64,
            "CBR max delay {}",
            sw.cbr_delay().max()
        );
        // VBR filled the remaining capacity.
        assert!(vbr_dep > slots * 3, "VBR departures {vbr_dep}");
    }

    #[test]
    fn idle_reservations_are_lent_to_vbr() {
        // Reserve the whole diagonal but send no CBR at all: VBR still
        // gets full switch throughput.
        let n = 4;
        let mut fs = FrameSchedule::new(n, 2);
        for p in 0..n {
            fs.reserve(InputPort::new(p), OutputPort::new(p), 2).unwrap();
        }
        let mut sw = HybridSwitch::new(fs, 3);
        let mut rng = Xoshiro256::seed_from(4);
        let slots = 10_000u64;
        for _ in 0..slots {
            let batch: Vec<ClassedArrival> = (0..n)
                .map(|i| classed(n, i, rng.index(n), ServiceClass::Vbr))
                .collect();
            sw.step_classed(&batch);
        }
        let r = sw.report();
        assert!(
            r.mean_output_utilization() > 0.93,
            "VBR utilization {} despite idle reservations",
            r.mean_output_utilization()
        );
        let (cbr_dep, _) = sw.departures_by_class();
        assert_eq!(cbr_dep, 0);
    }

    #[test]
    fn vbr_only_step_works_via_switch_model() {
        let mut fs = FrameSchedule::new(2, 2);
        fs.reserve(InputPort::new(0), OutputPort::new(0), 1).unwrap();
        let mut sw = HybridSwitch::new(fs, 5);
        assert_eq!(sw.name(), "hybrid-cbr-vbr");
        sw.step(&[Arrival::pair(2, InputPort::new(1), OutputPort::new(1))]);
        let r = sw.report();
        assert_eq!(r.departures, 1);
        assert_eq!(sw.queued(), 0);
        assert_eq!(sw.vbr_queued(), 0);
        assert_eq!(sw.cbr_queued(), 0);
    }

    #[test]
    fn schedule_can_be_updated_between_slots() {
        let mut fs = FrameSchedule::new(2, 4);
        fs.reserve(InputPort::new(0), OutputPort::new(1), 1).unwrap();
        let mut sw = HybridSwitch::new(fs, 6);
        sw.step(&[]);
        sw.schedule_mut()
            .reserve(InputPort::new(1), OutputPort::new(0), 2)
            .unwrap();
        assert_eq!(
            sw.schedule().demand(InputPort::new(1), OutputPort::new(0)),
            2
        );
        sw.step(&[]);
    }
}
