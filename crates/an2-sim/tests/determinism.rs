//! Golden digests of full switch-model runs.
//!
//! The VOQ/switch refactor (incremental request matrix, scratch buffers)
//! must not change which cells arrive, match, or depart. Each test runs a
//! switch model over a fixed arrival sequence and digests the final
//! [`SwitchReport`] plus residual occupancy; the constants were recorded
//! before the rewrite.

use an2_sched::rng::{SelectRng, Xoshiro256};
use an2_sched::{AcceptPolicy, FrameSchedule, InputPort, IterationLimit, OutputPort, Pim};
use an2_sim::cell::Arrival;
use an2_sim::fault::{FaultEvent, FaultKind, FaultLog, FaultPlan, PortSide};
use an2_sim::hybrid_switch::{ClassedArrival, HybridSwitch, ServiceClass};
use an2_sim::metrics::SwitchReport;
use an2_sim::model::SwitchModel;
use an2_sim::speedup_switch::SpeedupSwitch;
use an2_sim::switch::CrossbarSwitch;

const N: usize = 8;
const WARMUP: u64 = 64;
const MEASURE: u64 = 512;

struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_0000_01b3);
        }
    }

    fn report(&mut self, r: &SwitchReport) {
        self.u64(r.slots);
        self.u64(r.arrivals);
        self.u64(r.departures);
        self.u64(r.peak_occupancy as u64);
        self.u64(r.final_occupancy as u64);
        for &d in &r.departures_per_output {
            self.u64(d);
        }
        for &(flow, count) in &r.departures_per_flow {
            self.u64(flow);
            self.u64(count);
        }
        self.u64(r.delay.count());
        self.u64(r.delay.max());
        self.u64(r.delay.mean().to_bits());
        self.u64(r.delay.percentile(0.5));
    }
}

/// Bernoulli arrivals at 0.8 load, uniformly random destinations; at most
/// one cell per input per slot, as the models require.
fn arrivals_for(n: usize, rng: &mut Xoshiro256) -> Vec<Arrival> {
    let mut batch = Vec::new();
    for i in 0..n {
        if rng.bernoulli(0.8) {
            batch.push(Arrival::pair(
                n,
                InputPort::new(i),
                OutputPort::new(rng.index(n)),
            ));
        }
    }
    batch
}

fn arrivals_for_slot(rng: &mut Xoshiro256) -> Vec<Arrival> {
    arrivals_for(N, rng)
}

fn model_digest(model: &mut impl SwitchModel) -> u64 {
    let mut rng = Xoshiro256::seed_from(0xA5A5);
    for _ in 0..WARMUP {
        model.step(&arrivals_for_slot(&mut rng));
    }
    model.start_measurement();
    for _ in 0..MEASURE {
        model.step(&arrivals_for_slot(&mut rng));
    }
    let mut d = Digest::new();
    d.report(&model.report());
    d.u64(model.queued() as u64);
    d.0
}

#[track_caller]
fn assert_digest(actual: u64, expected: u64) {
    assert_eq!(
        actual, expected,
        "switch run changed: actual {actual:#018x}, recorded {expected:#018x}"
    );
}

#[test]
fn crossbar_with_pim4() {
    let pim = Pim::with_options(N, 42, IterationLimit::Fixed(4), AcceptPolicy::Random);
    let mut sw = CrossbarSwitch::new(pim);
    assert_digest(model_digest(&mut sw), 0xa28e1aaf46392c78);
}

/// The fault layer's acceptance bar: stepping through `step_faulted` with
/// an **empty** plan must reproduce [`crossbar_with_pim4`]'s digest bit for
/// bit — same arrivals, same RNG draws, same matchings, same report.
#[test]
fn faulted_crossbar_with_empty_plan_is_bit_identical() {
    let pim = Pim::with_options(N, 42, IterationLimit::Fixed(4), AcceptPolicy::Random);
    let mut sw = CrossbarSwitch::new(pim);
    let mut plan = FaultPlan::new();
    let mut log = FaultLog::new();
    let mut rng = Xoshiro256::seed_from(0xA5A5);
    for _ in 0..WARMUP {
        sw.step_faulted(&arrivals_for_slot(&mut rng), &mut plan, &mut log);
    }
    sw.start_measurement();
    for _ in 0..MEASURE {
        sw.step_faulted(&arrivals_for_slot(&mut rng), &mut plan, &mut log);
    }
    let mut d = Digest::new();
    d.report(&sw.report());
    d.u64(sw.queued() as u64);
    // The pinned digest of the *unfaulted* pim4 run, not a new constant.
    assert_digest(d.0, 0xa28e1aaf46392c78);
    assert_eq!(log.digest(), FaultLog::new().digest(), "log must stay empty");
}

/// Golden digest of a faulted 16×16 PIM(4) run under a fixed fault plan:
/// input and output failures with recovery, scripted arrival losses, and a
/// clock-drift excursion. Pins both the traffic outcome and the fault
/// log's own digest so fault bookkeeping can't drift silently.
#[test]
fn faulted_crossbar_digest_is_pinned() {
    const FN: usize = 16;
    const SLOTS: u64 = 400;
    let pim = Pim::with_options(FN, 7, IterationLimit::Fixed(4), AcceptPolicy::Random);
    let mut sw = CrossbarSwitch::new(pim);
    let mut plan = FaultPlan::from_events(vec![
        FaultEvent {
            slot: 40,
            kind: FaultKind::PortFail {
                switch: 0,
                side: PortSide::Input,
                port: 3,
            },
        },
        FaultEvent {
            slot: 60,
            kind: FaultKind::CellDrop {
                switch: 0,
                input: 1,
            },
        },
        FaultEvent {
            slot: 61,
            kind: FaultKind::CellDrop {
                switch: 0,
                input: 2,
            },
        },
        FaultEvent {
            slot: 80,
            kind: FaultKind::PortFail {
                switch: 0,
                side: PortSide::Output,
                port: 9,
            },
        },
        FaultEvent {
            slot: 100,
            kind: FaultKind::CellCorrupt {
                switch: 0,
                input: 5,
            },
        },
        FaultEvent {
            slot: 101,
            kind: FaultKind::CellCorrupt {
                switch: 0,
                input: 6,
            },
        },
        FaultEvent {
            slot: 120,
            kind: FaultKind::PortRecover {
                switch: 0,
                side: PortSide::Input,
                port: 3,
            },
        },
        FaultEvent {
            slot: 150,
            kind: FaultKind::ClockDrift {
                switch: 0,
                slots: 5,
            },
        },
        FaultEvent {
            slot: 200,
            kind: FaultKind::PortRecover {
                switch: 0,
                side: PortSide::Output,
                port: 9,
            },
        },
    ]);
    let mut log = FaultLog::new();
    let mut rng = Xoshiro256::seed_from(0x5EED);
    sw.start_measurement();
    for _ in 0..SLOTS {
        sw.step_faulted(&arrivals_for(FN, &mut rng), &mut plan, &mut log);
    }
    assert_eq!(plan.remaining(), 0, "every scripted event must have fired");
    assert_eq!(log.cells_dropped(), 2, "two scripted losses hit arrivals");
    let mut d = Digest::new();
    d.report(&sw.report());
    d.u64(sw.queued() as u64);
    d.u64(log.digest());
    assert_digest(d.0, 0x874367ff6d918c36);
}

#[test]
fn crossbar_with_islip() {
    let mut sw = CrossbarSwitch::new(an2_sched::islip::RoundRobinMatching::islip(N, 4));
    assert_digest(model_digest(&mut sw), 0x23d8e81486c14351);
}

#[test]
fn speedup_switch_k2() {
    let mut sw = SpeedupSwitch::new(N, 2, 4, 42);
    assert_digest(model_digest(&mut sw), 0xd39e1608701b0af0);
}

#[test]
fn hybrid_switch_cbr_plus_vbr() {
    let mut fs = FrameSchedule::new(N, 4);
    fs.reserve(InputPort::new(0), OutputPort::new(1), 2).unwrap();
    fs.reserve(InputPort::new(3), OutputPort::new(0), 1).unwrap();
    let mut sw = HybridSwitch::new(fs, 42);
    let mut rng = Xoshiro256::seed_from(0xC0FFEE);
    let mut d = Digest::new();
    for slot in 0..(WARMUP + MEASURE) {
        if slot == WARMUP {
            sw.start_measurement();
        }
        let mut batch: Vec<ClassedArrival> = Vec::new();
        // Input 0 paces a CBR cell every other slot; the rest send VBR.
        if slot % 2 == 0 {
            batch.push(ClassedArrival {
                arrival: Arrival::pair(N, InputPort::new(0), OutputPort::new(1)),
                class: ServiceClass::Cbr,
            });
        }
        for i in 1..N {
            if rng.bernoulli(0.7) {
                batch.push(ClassedArrival {
                    arrival: Arrival::pair(N, InputPort::new(i), OutputPort::new(rng.index(N))),
                    class: ServiceClass::Vbr,
                });
            }
        }
        sw.step_classed(&batch);
    }
    d.report(&sw.report());
    let (cbr_dep, vbr_dep) = sw.departures_by_class();
    d.u64(cbr_dep);
    d.u64(vbr_dep);
    d.u64(sw.cbr_delay().count());
    d.u64(sw.cbr_delay().max());
    d.u64(sw.queued() as u64);
    assert_digest(d.0, 0xcb56fddd23392187);
}
