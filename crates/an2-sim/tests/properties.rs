//! Property-based tests for the simulator substrate.

use an2_sched::fifo::FifoPriority;
use an2_sched::Pim;
use an2_sim::cell::Arrival;
use an2_sim::fifo_switch::FifoSwitch;
use an2_sim::hybrid_switch::HybridSwitch;
use an2_sim::metrics::DelayStats;
use an2_sim::model::SwitchModel;
use an2_sim::output_queued::OutputQueuedSwitch;
use an2_sim::speedup_switch::SpeedupSwitch;
use an2_sim::switch::CrossbarSwitch;
use an2_sim::traffic::{
    BurstyTraffic, PeriodicTraffic, RateMatrixTraffic, Traffic,
};
use proptest::prelude::*;

/// Drives a model with a traffic source and returns (arrivals, departures,
/// final occupancy).
fn drive(model: &mut dyn SwitchModel, traffic: &mut dyn Traffic, slots: u64) -> (u64, u64, u64) {
    let mut buf = Vec::new();
    for s in 0..slots {
        buf.clear();
        traffic.arrivals(s, &mut buf);
        model.step(&buf);
    }
    let r = model.report();
    (r.arrivals, r.departures, r.final_occupancy as u64)
}

fn any_traffic(n: usize, seed: u64, which: u8, load: f64) -> Box<dyn Traffic> {
    match which % 3 {
        0 => Box::new(RateMatrixTraffic::uniform(n, load, seed)),
        1 => Box::new(PeriodicTraffic::new(n, load, seed)),
        _ => Box::new(BurstyTraffic::new(
            n,
            load.clamp(0.05, 0.95),
            4.0,
            seed,
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every switch model conserves cells: arrivals = departures + queued.
    #[test]
    fn all_models_conserve_cells(
        n in 2usize..12,
        seed in any::<u64>(),
        which_traffic in any::<u8>(),
        load in 0.05f64..1.0,
        model_kind in 0u8..5,
    ) {
        let mut model: Box<dyn SwitchModel> = match model_kind {
            0 => Box::new(CrossbarSwitch::new(Pim::new(n, seed))),
            1 => Box::new(FifoSwitch::new(n, FifoPriority::Random, seed)),
            2 => Box::new(OutputQueuedSwitch::new(n)),
            3 => Box::new(SpeedupSwitch::new(n, 1 + (seed as usize % 3), 4, seed)),
            _ => {
                let fs = an2_sched::FrameSchedule::new(n, 4);
                Box::new(HybridSwitch::new(fs, seed))
            }
        };
        let mut traffic = any_traffic(n, seed ^ 1, which_traffic, load);
        let (arr, dep, occ) = drive(model.as_mut(), traffic.as_mut(), 500);
        prop_assert_eq!(arr, dep + occ, "model {}", model.name());
    }

    /// No model invents departures: departures per output never exceed one
    /// per slot (checked via the report's per-output totals).
    #[test]
    fn output_links_respect_line_rate(
        n in 2usize..10,
        seed in any::<u64>(),
        model_kind in 0u8..4,
    ) {
        let slots = 400u64;
        let mut model: Box<dyn SwitchModel> = match model_kind {
            0 => Box::new(CrossbarSwitch::new(Pim::new(n, seed))),
            1 => Box::new(FifoSwitch::new(n, FifoPriority::Rotating, seed)),
            2 => Box::new(OutputQueuedSwitch::new(n)),
            _ => Box::new(SpeedupSwitch::new(n, 2, 4, seed)),
        };
        let mut traffic = RateMatrixTraffic::uniform(n, 1.0, seed ^ 2);
        let mut buf = Vec::new();
        for s in 0..slots {
            buf.clear();
            traffic.arrivals(s, &mut buf);
            model.step(&buf);
        }
        let r = model.report();
        for (j, &d) in r.departures_per_output.iter().enumerate() {
            prop_assert!(d <= slots, "output {j} sent {d} cells in {slots} slots");
        }
    }

    /// Traffic sources respect the physical constraints: at most one
    /// arrival per input per slot, ports in range, and long-run input rate
    /// close to the configured load.
    #[test]
    fn traffic_sources_respect_link_constraints(
        n in 1usize..16,
        seed in any::<u64>(),
        which in any::<u8>(),
        load in 0.05f64..1.0,
    ) {
        let mut t = any_traffic(n, seed, which, load);
        let mut buf: Vec<Arrival> = Vec::new();
        let mut per_input = vec![0u64; n];
        let slots = 2_000u64;
        for s in 0..slots {
            buf.clear();
            t.arrivals(s, &mut buf);
            let mut seen = an2_sched::PortSet::new();
            for a in &buf {
                prop_assert!(a.input.index() < n);
                prop_assert!(a.output.index() < n);
                prop_assert!(seen.insert(a.input.index()), "duplicate input in one slot");
                per_input[a.input.index()] += 1;
            }
        }
        for &c in &per_input {
            prop_assert!(c <= slots);
        }
    }

    /// DelayStats matches a naive model for arbitrary samples.
    #[test]
    fn delay_stats_matches_model(samples in proptest::collection::vec(0u64..2_000, 1..300)) {
        let mut d = DelayStats::new();
        for &s in &samples {
            d.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let n = samples.len();
        prop_assert_eq!(d.count(), n as u64);
        let mean: f64 = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        prop_assert!((d.mean() - mean).abs() < 1e-9);
        prop_assert_eq!(d.max(), *sorted.last().unwrap());
        for &p in &[0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let idx = ((n as f64 * p).ceil().max(1.0) as usize - 1).min(n - 1);
            prop_assert_eq!(d.percentile(p), sorted[idx], "p = {}", p);
        }
    }

    /// Merging two DelayStats equals recording the concatenation.
    #[test]
    fn delay_stats_merge_is_concat(
        a in proptest::collection::vec(0u64..500, 0..100),
        b in proptest::collection::vec(0u64..500, 0..100),
    ) {
        let mut da = DelayStats::new();
        for &x in &a { da.record(x); }
        let mut db = DelayStats::new();
        for &x in &b { db.record(x); }
        da.merge(&db);
        let mut all = DelayStats::new();
        for &x in a.iter().chain(&b) { all.record(x); }
        prop_assert_eq!(da, all);
    }
}
