//! Conservation-ledger regression tests: every admit/drop outcome at a
//! `VoqBuffers::push` call site must be accounted for, including under
//! scripted faults. Guards the invariant-checker's core identity:
//! offered cells = admitted arrivals + dropped-with-cause.

use an2_sched::{InputPort, OutputPort, Pim};
use an2_sim::cell::Arrival;
use an2_sim::fault::{DropCause, FaultEvent, FaultKind, FaultLog, FaultPlan};
use an2_sim::model::SwitchModel;
use an2_sim::switch::CrossbarSwitch;

/// Regression: drops under `CellCorrupt` faults (and the drop-tail drops
/// they coexist with) all land in the fault log, so the end-to-end ledger
/// balances exactly.
#[test]
fn corrupt_and_buffer_full_drops_balance_the_ledger() {
    let n = 4;
    let mut sw = CrossbarSwitch::new(Pim::new(n, 0xFEED));
    sw.buffers_mut().set_pair_capacity(Some(2));
    let mut plan = FaultPlan::from_events(
        (3..9)
            .map(|slot| FaultEvent {
                slot,
                kind: FaultKind::CellCorrupt {
                    switch: 0,
                    input: 1,
                },
            })
            .collect(),
    );
    let mut log = FaultLog::new();
    let mut offered = 0u64;
    for _ in 0..64 {
        // Hotspot: every input offers a cell for output 0 every slot. Only
        // one can depart per slot, so 2-cell VOQs overflow immediately and
        // drop-tail (BufferFull) drops coexist with the scripted
        // corruption losses.
        let arrivals: Vec<Arrival> = (0..n)
            .map(|i| Arrival::pair(n, InputPort::new(i), OutputPort::new(0)))
            .collect();
        offered += arrivals.len() as u64;
        sw.step_faulted(&arrivals, &mut plan, &mut log);
    }
    let report = sw.report();

    let corrupted = log
        .drops()
        .iter()
        .filter(|d| d.cause == DropCause::Corrupted)
        .count() as u64;
    let buffer_full = log
        .drops()
        .iter()
        .filter(|d| d.cause == DropCause::BufferFull)
        .count() as u64;
    assert_eq!(corrupted, 6, "one corrupted arrival per scripted slot");
    assert!(buffer_full > 0, "the hotspot must overflow a 2-cell VOQ");
    assert_eq!(
        buffer_full,
        sw.buffers().drops(),
        "fault log and VOQ drop counters must agree"
    );
    assert_eq!(corrupted + buffer_full, log.cells_dropped());

    // The ledger: every offered cell was admitted, corrupted on the wire,
    // or rejected at admission — nothing vanishes silently.
    assert_eq!(offered, report.arrivals + log.cells_dropped());
    // And every admitted cell either departed or is still buffered.
    assert!(
        report.is_conserved(),
        "arrivals {} != departures {} + queued {}",
        report.arrivals,
        report.departures,
        report.final_occupancy
    );
    // The capacity invariant held throughout (checked at the end; pushes
    // never exceed it mid-run by construction of drop-tail admission).
    assert!(sw.buffers().capacity_invariant_holds());
}

/// A preload into capacity-limited buffers reports exactly the cells it
/// could not admit, so scenario setups can feed the ledger too.
#[test]
fn preload_reports_unadmitted_cells() {
    let n = 4;
    let mut sw = CrossbarSwitch::new(Pim::new(n, 1));
    sw.buffers_mut().set_pair_capacity(Some(3));
    // 5 cells for the same pair (distinct flows so the per-flow FIFO rule
    // is respected): 3 admitted, 2 rejected.
    let snapshot: Vec<Arrival> = (0..5)
        .map(|k| Arrival {
            flow: an2_sim::cell::FlowId(1000 + k),
            input: InputPort::new(0),
            output: OutputPort::new(0),
        })
        .collect();
    let dropped = sw.preload(&snapshot);
    assert_eq!(dropped, 2);
    assert_eq!(sw.buffers().len(), 3);
    assert_eq!(sw.buffers().drops(), 2);
    assert!(sw.buffers().capacity_invariant_holds());
    let report = sw.report();
    assert_eq!(report.arrivals, 3);
    assert!(report.is_conserved());
}
