//! Proof that the batch engine's slot loop and the quantile sketch's
//! record path perform no heap allocation in steady state.
//!
//! Same counting-allocator scheme as `an2-sched/tests/zero_alloc.rs`: a
//! thread-local counter wraps the system allocator, the code under test is
//! warmed up (first slots may grow the delay histogram and scheduler
//! scratch to steady-state capacity, and a pair queue deeper than its
//! inline slots spills once), and after that the counter must not move.
//!
//! The `an2-lint` call-graph rule proves the *scheduler* half of the slot
//! loop allocation-free at the source level; this test is the runtime
//! check that covers what the lint's name-resolution cannot see — the
//! engine's own bookkeeping, `DelayStats::record`'s amortized histogram
//! and `QuantileSketch::record`'s fixed bucket table.

use an2_sched::rng::{SelectRng, Xoshiro256};
use an2_sched::{InputPort, OutputPort, Pim};
use an2_sim::batch::BatchCrossbar;
use an2_sim::cell::Arrival;
use an2_sim::metrics::QuantileSketch;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

fn local_count() -> usize {
    ALLOCATIONS.with(|c| c.get())
}

struct CountingAlloc;

fn bump() {
    // `try_with` because the allocator can be called while a thread's TLS
    // is being torn down; those allocations belong to the runtime anyway.
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: a pure pass-through to `System`: every method forwards its
// arguments unchanged and returns `System`'s result unchanged, so the
// GlobalAlloc contract (valid layouts in, valid blocks out, dealloc only
// of live blocks) holds exactly as it does for `System` itself. The only
// addition, `bump()`, touches a thread-local counter and never the heap.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        // SAFETY: `layout` is the caller's, passed through unmodified.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by `System.alloc` (every allocation
        // in this process goes through the forwarding impl above) and
        // `layout` is the one it was allocated with, per the caller.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        // SAFETY: `ptr`/`layout` describe a live System allocation (see
        // dealloc) and `new_size` is the caller's, passed through.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// `QuantileSketch::record` is a pure bucket increment: no allocation
/// from the very first sample (the bucket table is sized at `new`).
#[test]
fn sketch_record_never_allocates() {
    let mut sketch = QuantileSketch::new();
    let before = local_count();
    for v in 0..100_000u64 {
        sketch.record(v.wrapping_mul(0x9e37_79b9).rotate_left(17) % (1 << 40));
    }
    let allocs = local_count() - before;
    assert_eq!(allocs, 0, "sketch record allocated {allocs} times");
    assert_eq!(sketch.count(), 100_000);
}

/// The batch engine's full slot loop — arrival enqueue, scheduling,
/// departure bookkeeping, exact histogram and sketch — settles to zero
/// allocations per slot once scratch reaches steady state.
#[test]
fn batch_slot_loop_does_not_allocate_after_warmup() {
    let n = 32usize;
    let mut engine = BatchCrossbar::new(n, Pim::new(n, 42));
    let mut rng = Xoshiro256::seed_from(0xBA7C);
    let mut buf: Vec<Arrival> = Vec::with_capacity(n);
    let drive = |engine: &mut BatchCrossbar<Pim<Xoshiro256>>,
                     rng: &mut Xoshiro256,
                     buf: &mut Vec<Arrival>,
                     slots: usize| {
        for _ in 0..slots {
            buf.clear();
            for i in 0..n {
                if rng.bernoulli(0.8) {
                    buf.push(Arrival::pair(
                        n,
                        InputPort::new(i),
                        OutputPort::new(rng.index(n)),
                    ));
                }
            }
            engine.step_slot(buf);
        }
    };
    // Warmup: the delay histogram grows to cover the workload's delay
    // range, the scheduler fills its scratch, deep pairs spill once.
    drive(&mut engine, &mut rng, &mut buf, 500);
    let before = local_count();
    drive(&mut engine, &mut rng, &mut buf, 500);
    let allocs = local_count() - before;
    assert_eq!(allocs, 0, "batch slot loop allocated {allocs} times");
}
