//! Proof that the batch engine's slot loop and the quantile sketch's
//! record path perform no heap allocation in steady state.
//!
//! Same counting-allocator scheme as `an2-sched/tests/zero_alloc.rs`: a
//! thread-local counter wraps the system allocator, the code under test is
//! warmed up (first slots may grow the delay histogram and scheduler
//! scratch to steady-state capacity, and a pair queue deeper than its
//! inline slots spills once), and after that the counter must not move.
//!
//! The `an2-lint` call-graph rule proves the *scheduler* half of the slot
//! loop allocation-free at the source level; this test is the runtime
//! check that covers what the lint's name-resolution cannot see — the
//! engine's own bookkeeping, `DelayStats::record`'s amortized histogram
//! and `QuantileSketch::record`'s fixed bucket table.

use an2_sched::rng::{SelectRng, Xoshiro256};
use an2_sched::{InputPort, OutputPort, Pim};
use an2_sim::batch::BatchCrossbar;
use an2_sim::cell::Arrival;
use an2_sim::metrics::QuantileSketch;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

fn local_count() -> usize {
    ALLOCATIONS.with(|c| c.get())
}

struct CountingAlloc;

fn bump() {
    // `try_with` because the allocator can be called while a thread's TLS
    // is being torn down; those allocations belong to the runtime anyway.
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: a pure pass-through to `System`: every method forwards its
// arguments unchanged and returns `System`'s result unchanged, so the
// GlobalAlloc contract (valid layouts in, valid blocks out, dealloc only
// of live blocks) holds exactly as it does for `System` itself. The only
// addition, `bump()`, touches a thread-local counter and never the heap.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        // SAFETY: `layout` is the caller's, passed through unmodified.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by `System.alloc` (every allocation
        // in this process goes through the forwarding impl above) and
        // `layout` is the one it was allocated with, per the caller.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        // SAFETY: `ptr`/`layout` describe a live System allocation (see
        // dealloc) and `new_size` is the caller's, passed through.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// `QuantileSketch::record` is a pure bucket increment: no allocation
/// from the very first sample (the bucket table is sized at `new`).
#[test]
fn sketch_record_never_allocates() {
    let mut sketch = QuantileSketch::new();
    let before = local_count();
    for v in 0..100_000u64 {
        sketch.record(v.wrapping_mul(0x9e37_79b9).rotate_left(17) % (1 << 40));
    }
    let allocs = local_count() - before;
    assert_eq!(allocs, 0, "sketch record allocated {allocs} times");
    assert_eq!(sketch.count(), 100_000);
}

/// The batch engine's full slot loop — arrival enqueue, scheduling,
/// departure bookkeeping, exact histogram and sketch — settles to zero
/// allocations per slot once scratch reaches steady state.
#[test]
fn batch_slot_loop_does_not_allocate_after_warmup() {
    let n = 32usize;
    let mut engine = BatchCrossbar::new(n, Pim::new(n, 42));
    let mut rng = Xoshiro256::seed_from(0xBA7C);
    let mut buf: Vec<Arrival> = Vec::with_capacity(n);
    let drive = |engine: &mut BatchCrossbar<Pim<Xoshiro256>>,
                     rng: &mut Xoshiro256,
                     buf: &mut Vec<Arrival>,
                     slots: usize| {
        for _ in 0..slots {
            buf.clear();
            for i in 0..n {
                if rng.bernoulli(0.8) {
                    buf.push(Arrival::pair(
                        n,
                        InputPort::new(i),
                        OutputPort::new(rng.index(n)),
                    ));
                }
            }
            engine.step_slot(buf);
        }
    };
    // Warmup: the delay histogram grows to cover the workload's delay
    // range, the scheduler fills its scratch, deep pairs spill once.
    drive(&mut engine, &mut rng, &mut buf, 500);
    let before = local_count();
    drive(&mut engine, &mut rng, &mut buf, 500);
    let allocs = local_count() - before;
    assert_eq!(allocs, 0, "batch slot loop allocated {allocs} times");
}

/// Degraded scheduling is as allocation-free as healthy scheduling: with
/// a quarter of the ports masked out, the masked batch slot loop settles
/// to zero allocations per slot (mask installation and the masked
/// grant/accept sweeps reuse the same scratch).
#[test]
fn masked_batch_slot_loop_does_not_allocate_after_warmup() {
    use an2_sched::PortMask;
    let n = 32usize;
    let mut engine = BatchCrossbar::new(n, Pim::new(n, 43));
    let mut mask = PortMask::all(n);
    for p in 0..n / 4 {
        mask.fail_input(p * 2);
        mask.fail_output(p * 2 + 1);
    }
    engine.set_port_mask(mask);
    // Steady-state degraded traffic targets live ports only: cells for a
    // dead output would buffer forever and their queue growth would be
    // workload-driven allocation, not a hot-path leak.
    let live_in: Vec<usize> = (0..n).filter(|&p| p % 2 == 1 || p >= n / 2).collect();
    let live_out: Vec<usize> = (0..n)
        .filter(|&p| p % 2 == 0 || p >= n / 2)
        .collect();
    let mut rng = Xoshiro256::seed_from(0x3A55);
    let mut buf: Vec<Arrival> = Vec::with_capacity(n);
    let mut drive = |engine: &mut BatchCrossbar<Pim<Xoshiro256>>,
                     rng: &mut Xoshiro256,
                     slots: usize| {
        for _ in 0..slots {
            buf.clear();
            for &i in &live_in {
                if rng.bernoulli(0.6) {
                    buf.push(Arrival::pair(
                        n,
                        InputPort::new(i),
                        OutputPort::new(live_out[rng.index(live_out.len())]),
                    ));
                }
            }
            engine.step_slot(&buf);
        }
    };
    drive(&mut engine, &mut rng, 500);
    let before = local_count();
    drive(&mut engine, &mut rng, 500);
    let allocs = local_count() - before;
    assert_eq!(allocs, 0, "masked batch slot loop allocated {allocs} times");
}

/// Chaos stepping in steady state — `step_faulted` with a drained plan
/// and a degraded mask left over from earlier faults — allocates nothing:
/// the event match, the mask bookkeeping and the injected/corrupted
/// PortSet probes are all stack-only once the log stops growing.
#[test]
fn chaos_stepping_does_not_allocate_after_warmup() {
    use an2_sim::fault::{FaultEvent, FaultKind, FaultLog, FaultPlan};
    let n = 32usize;
    let mut engine = BatchCrossbar::new(n, Pim::new(n, 44));
    // A short-lived campaign: port failures that partially recover, and a
    // burst of cell drops — all consumed during warmup, leaving the
    // engine running degraded (port 3 stays masked) with an empty plan.
    let mut events = vec![
        FaultEvent {
            slot: 10,
            kind: FaultKind::LinkDown { switch: 0, output: 5 },
        },
        FaultEvent {
            slot: 90,
            kind: FaultKind::LinkUp { switch: 0, output: 5 },
        },
        FaultEvent {
            slot: 20,
            kind: FaultKind::PortFail {
                switch: 0,
                side: an2_sim::fault::PortSide::Input,
                port: 3,
            },
        },
    ];
    for slot in 30..60 {
        events.push(FaultEvent {
            slot,
            kind: FaultKind::CellDrop { switch: 0, input: 7 },
        });
    }
    let mut plan = FaultPlan::from_events(events);
    let mut log = FaultLog::new();
    let mut rng = Xoshiro256::seed_from(0xC4A05);
    let mut buf: Vec<Arrival> = Vec::with_capacity(n);
    let mut drive = |engine: &mut BatchCrossbar<Pim<Xoshiro256>>,
                     plan: &mut FaultPlan,
                     log: &mut FaultLog,
                     rng: &mut Xoshiro256,
                     slots: usize| {
        for _ in 0..slots {
            buf.clear();
            for i in 0..n {
                // Input 3 stays masked for the whole test; a cell arriving
                // there would buffer forever, so the host routes around it
                // (unbounded queue growth is workload, not hot path).
                if rng.bernoulli(0.8) && i != 3 {
                    buf.push(Arrival::pair(
                        n,
                        InputPort::new(i),
                        OutputPort::new(rng.index(n)),
                    ));
                }
            }
            engine.step_faulted(&buf, plan, log);
        }
    };
    // Warmup consumes every scripted event (log growth happens here).
    drive(&mut engine, &mut plan, &mut log, &mut rng, 500);
    assert_eq!(plan.remaining(), 0, "warmup must drain the plan");
    assert!(engine.dropped() > 0, "the drop burst must have struck");
    assert!(!engine.port_mask().is_full(), "port 3 must still be masked");
    let before = local_count();
    drive(&mut engine, &mut plan, &mut log, &mut rng, 500);
    let allocs = local_count() - before;
    assert_eq!(allocs, 0, "chaos stepping allocated {allocs} times");
}

/// The wide-radix sparse slot loop: a 1024-port engine under light
/// uniform traffic runs the active-pair iSLIP walk (pruned grant columns,
/// nonzero-word successor lookup) plus the idle-slot scheduler skip, and
/// none of it may allocate once warm. This is the exact configuration of
/// the perf harness's headline scaling rows.
#[test]
fn wide_sparse_batch_slot_loop_does_not_allocate_after_warmup() {
    use an2_sched::islip::WideRoundRobinMatching;
    let n = 1024usize;
    let mut engine: BatchCrossbar<_, 16> =
        BatchCrossbar::new(n, WideRoundRobinMatching::islip(n, 4));
    let mut rng = Xoshiro256::seed_from(0xBA7D);
    let mut buf: Vec<Arrival> = Vec::with_capacity(n);
    let mut drive = |engine: &mut BatchCrossbar<WideRoundRobinMatching, 16>, slots: usize| {
        for slot in 0..slots {
            buf.clear();
            // Mostly light load (~51 cells/slot); every 8th slot is idle so
            // the idle-slot skip path is part of the measured region.
            if slot % 8 != 7 {
                for i in 0..n {
                    if rng.bernoulli(0.05) {
                        buf.push(Arrival::pair(
                            n,
                            InputPort::new(i),
                            OutputPort::new(rng.index(n)),
                        ));
                    }
                }
            }
            engine.step_slot(&buf);
        }
    };
    drive(&mut engine, 300);
    let before = local_count();
    drive(&mut engine, 300);
    let allocs = local_count() - before;
    assert_eq!(allocs, 0, "wide sparse slot loop allocated {allocs} times");
}
