//! Faulted stepping of the batched SoA engine.
//!
//! Pins the chaos-engine contracts of [`BatchCrossbar::step_faulted`]:
//!
//! * **digest parity** — with an empty fault plan, `step_faulted` is
//!   bit-identical to `step_slot` at every wide radix the chaos grammar
//!   samples (N ∈ {64, 256, 1024}); fault handling must cost nothing in
//!   behaviour when no fault strikes.
//! * **ledger** — injected/corrupted drops are charged to the engine
//!   total *and* the per-pair counters, and the O(1) conservation ledger
//!   (`offered == departed + queued + dropped`) holds after every slot.
//! * **degraded scheduling** — a failed output stops departing but its
//!   arrivals still buffer (the mask gates scheduling only); clock drift
//!   suspends scheduling entirely until the excursion ends.

use an2_sched::rng::{SelectRng, Xoshiro256};
use an2_sched::{InputPort, OutputPort, Scheduler, WidePim};
use an2_sim::batch::BatchCrossbar;
use an2_sim::cell::Arrival;
use an2_sim::fault::{FaultEvent, FaultKind, FaultLog, FaultPlan, PortSide};
use an2_sim::model::SwitchModel;
use proptest::prelude::*;

/// Bernoulli(load) arrivals with uniform destinations — the pair-flow
/// convention the engine's one-flow-per-pair regime expects.
fn arrivals_for(n: usize, load: f64, rng: &mut Xoshiro256) -> Vec<Arrival> {
    let mut batch = Vec::new();
    for i in 0..n {
        if rng.bernoulli(load) {
            batch.push(Arrival::pair(
                n,
                InputPort::new(i),
                OutputPort::new(rng.index(n)),
            ));
        }
    }
    batch
}

/// FNV-1a digest over everything observable about the engine.
fn digest<S: Scheduler<16>>(engine: &BatchCrossbar<S, 16>) -> u64 {
    let r = engine.report();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
    };
    mix(r.slots);
    mix(r.arrivals);
    mix(r.departures);
    mix(r.peak_occupancy as u64);
    mix(r.final_occupancy as u64);
    for &d in &r.departures_per_output {
        mix(d);
    }
    mix(r.delay.count());
    mix(r.delay.max());
    mix(r.delay.mean().to_bits());
    mix(r.delay.percentile(0.5));
    mix(engine.offered());
    mix(engine.dropped());
    h
}

fn wide_engine(n: usize, seed: u64) -> BatchCrossbar<WidePim, 16> {
    BatchCrossbar::new(n, WidePim::new(n, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `step_faulted` with an empty plan is `step_slot`, bit for bit, at
    /// every radix the chaos grammar samples.
    #[test]
    fn empty_plan_step_faulted_matches_step_slot(
        seed in any::<u64>(),
        load in 0.02f64..0.30,
    ) {
        for n in [64usize, 256, 1024] {
            let slots = if n == 1024 { 96 } else { 192 };
            let mut plain = wide_engine(n, seed);
            let mut faulted = wide_engine(n, seed);
            let mut plan = FaultPlan::new();
            let mut log = FaultLog::new();
            let mut rng_a = Xoshiro256::seed_from(seed ^ 0x7EA);
            let mut rng_b = Xoshiro256::seed_from(seed ^ 0x7EA);
            for _ in 0..slots {
                plain.step_slot(&arrivals_for(n, load, &mut rng_a));
                faulted.step_faulted(&arrivals_for(n, load, &mut rng_b), &mut plan, &mut log);
            }
            prop_assert_eq!(digest(&plain), digest(&faulted), "divergence at n={}", n);
            prop_assert_eq!(faulted.dropped(), 0);
            prop_assert_eq!(log.drops().len(), 0);
            faulted.verify_conservation().unwrap();
            faulted.verify_drop_ledger().unwrap();
        }
    }

    /// Injected drops are charged to the engine total, the per-pair
    /// counters, and the fault log, with conservation intact throughout.
    #[test]
    fn cell_drops_balance_the_conservation_ledger(
        seed in any::<u64>(),
        load in 0.2f64..0.8,
        drop_input in 0usize..64,
    ) {
        let n = 64;
        let mut engine = wide_engine(n, seed);
        let mut events = Vec::new();
        for slot in 8..40 {
            events.push(FaultEvent {
                slot,
                kind: FaultKind::CellDrop { switch: 0, input: drop_input },
            });
            events.push(FaultEvent {
                slot,
                kind: FaultKind::CellCorrupt { switch: 0, input: (drop_input + 1) % n },
            });
        }
        let mut plan = FaultPlan::from_events(events);
        let mut log = FaultLog::new();
        let mut rng = Xoshiro256::seed_from(seed ^ 0xD0);
        for _ in 0..96 {
            engine.step_faulted(&arrivals_for(n, load, &mut rng), &mut plan, &mut log);
            engine.verify_conservation().unwrap();
        }
        engine.verify_drop_ledger().unwrap();
        prop_assert!(engine.dropped() > 0, "32 drop slots at >=20% load must strike");
        prop_assert_eq!(engine.dropped(), log.drops().len() as u64);
        let pair_total: u64 = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .map(|(i, j)| engine.pair_drops(i, j))
            .sum();
        prop_assert_eq!(pair_total, engine.dropped());
        prop_assert_eq!(engine.offered(), engine.admitted() + engine.dropped());
    }
}

/// A failed output is masked out of scheduling — nothing departs through
/// it — but its arrivals still buffer, and recovery drains the backlog.
#[test]
fn masked_output_buffers_but_never_departs() {
    let n = 64;
    let target = 7usize;
    let mut engine = wide_engine(n, 0x5EED);
    let mut plan = FaultPlan::from_events(vec![
        FaultEvent {
            slot: 0,
            kind: FaultKind::LinkDown { switch: 0, output: target },
        },
        FaultEvent {
            slot: 200,
            kind: FaultKind::LinkUp { switch: 0, output: target },
        },
    ]);
    let mut log = FaultLog::new();
    // Every input sends to the failed output only.
    let burst: Vec<Arrival> = (0..8)
        .map(|i| Arrival::pair(n, InputPort::new(i), OutputPort::new(target)))
        .collect();
    for slot in 0..200u64 {
        let arrivals = if slot < 8 { burst.clone() } else { Vec::new() };
        engine.step_faulted(&arrivals, &mut plan, &mut log);
        engine.verify_conservation().unwrap();
    }
    let r = engine.report();
    assert_eq!(r.departures, 0, "a masked output must not depart cells");
    assert_eq!(r.final_occupancy, 64, "arrivals must still buffer while masked");
    assert!(!engine.port_mask().is_full());
    // Recovery unmasks the output; the backlog drains one cell per slot.
    for _ in 200..300u64 {
        engine.step_faulted(&[], &mut plan, &mut log);
    }
    let r = engine.report();
    assert_eq!(r.departures, 64, "the backlog must drain after recovery");
    assert!(engine.port_mask().is_full());
}

/// Clock drift freezes the crossbar: arrivals buffer, nothing departs
/// until the excursion ends, and scheduling resumes afterwards.
#[test]
fn clock_drift_suspends_scheduling() {
    let n = 64;
    let mut engine = wide_engine(n, 0xD21F7);
    let mut plan = FaultPlan::from_events(vec![FaultEvent {
        slot: 4,
        kind: FaultKind::ClockDrift { switch: 0, slots: 32 },
    }]);
    let mut log = FaultLog::new();
    let mut rng = Xoshiro256::seed_from(0x1CE);
    let mut frozen_departures = None;
    for slot in 0..96u64 {
        engine.step_faulted(&arrivals_for(n, 0.4, &mut rng), &mut plan, &mut log);
        if slot == 4 {
            frozen_departures = Some(engine.departed());
        }
        if (5..36).contains(&slot) {
            assert_eq!(
                engine.departed(),
                frozen_departures.unwrap(),
                "slot {slot}: departures advanced during the drift excursion"
            );
        }
        engine.verify_conservation().unwrap();
    }
    assert!(
        engine.departed() > frozen_departures.unwrap(),
        "scheduling must resume after the excursion"
    );
}

/// The masked engine never matches a failed port even at the widest
/// radix: a spot check of the chaos engine's degraded-scheduling path at
/// N = 1024 with both an input-side and an output-side failure.
#[test]
fn wide_masked_ports_direct_traffic_around_failures() {
    let n = 1024;
    let mut engine = wide_engine(n, 0x71DE);
    let mut plan = FaultPlan::from_events(vec![
        FaultEvent {
            slot: 0,
            kind: FaultKind::PortFail { switch: 0, side: PortSide::Input, port: 100 },
        },
        FaultEvent {
            slot: 0,
            kind: FaultKind::LinkDown { switch: 0, output: 200 },
        },
    ]);
    let mut log = FaultLog::new();
    let mut rng = Xoshiro256::seed_from(0xFA11);
    for _ in 0..64u64 {
        engine.step_faulted(&arrivals_for(n, 0.1, &mut rng), &mut plan, &mut log);
        engine.verify_conservation().unwrap();
    }
    let r = engine.report();
    assert_eq!(
        r.departures_per_output[200], 0,
        "failed output 200 must not see departures"
    );
    assert!(r.departures > 0, "the healthy 1022 ports must keep moving cells");
    engine.verify_drop_ledger().unwrap();
}
