//! Property: the batched SoA engine is bit-identical to the scalar
//! object-walking engine in the one-flow-per-pair regime.
//!
//! [`BatchCrossbar`] replaces `CrossbarSwitch`'s per-cell heap queues with
//! flat per-pair FIFOs of arrival slots plus incremental request-matrix
//! deltas. That rewrite is only sound if *nothing observable changes*:
//! same arrivals admitted, same requests presented, same matchings drawn
//! (the schedulers are seeded identically and must consume identical
//! randomness), same departures and delays recorded. The test digests the
//! full [`SwitchReport`] — the same field walk the pinned golden digests
//! in `determinism.rs` use — and demands equality across schedulers,
//! switch sizes and offered loads.

use an2_sched::islip::RoundRobinMatchingN;
use an2_sched::maximum::MaximumMatchingN;
use an2_sched::rng::{SelectRng, Xoshiro256};
use an2_sched::{AcceptPolicy, IterationLimit, Pim, Scheduler};
use an2_sim::batch::BatchCrossbar;
use an2_sim::cell::Arrival;
use an2_sim::metrics::SwitchReport;
use an2_sim::model::SwitchModel;
use an2_sim::switch::CrossbarSwitch;
use an2_sched::{InputPort, OutputPort};
use proptest::prelude::*;

/// FNV-1a over the full report, matching `determinism.rs`'s field walk.
fn digest_report(r: &SwitchReport, queued: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
    };
    mix(r.slots);
    mix(r.arrivals);
    mix(r.departures);
    mix(r.peak_occupancy as u64);
    mix(r.final_occupancy as u64);
    for &d in &r.departures_per_output {
        mix(d);
    }
    for &(flow, count) in &r.departures_per_flow {
        mix(flow);
        mix(count);
    }
    mix(r.delay.count());
    mix(r.delay.max());
    mix(r.delay.mean().to_bits());
    mix(r.delay.percentile(0.5));
    mix(queued as u64);
    h
}

/// Identically-seeded scheduler pair for each configuration under test.
fn make_scheduler(which: usize, n: usize, seed: u64) -> Box<dyn Scheduler> {
    match which {
        0 => Box::new(Pim::new(n, seed)),
        1 => Box::new(Pim::with_options(
            n,
            seed,
            IterationLimit::ToCompletion,
            AcceptPolicy::Random,
        )),
        2 => Box::new(RoundRobinMatchingN::islip(n, 4)),
        3 => Box::new(RoundRobinMatchingN::rrm(n, 4)),
        _ => Box::new(MaximumMatchingN::new()),
    }
}

/// Bernoulli(load) arrivals with uniform destinations — the pair-flow
/// convention both engines share.
fn arrivals_for(n: usize, load: f64, rng: &mut Xoshiro256) -> Vec<Arrival> {
    let mut batch = Vec::new();
    for i in 0..n {
        if rng.bernoulli(load) {
            batch.push(Arrival::pair(
                n,
                InputPort::new(i),
                OutputPort::new(rng.index(n)),
            ));
        }
    }
    batch
}

fn run_digest(model: &mut impl SwitchModel, n: usize, load: f64, seed: u64) -> u64 {
    let mut rng = Xoshiro256::seed_from(seed);
    for _ in 0..32 {
        model.step(&arrivals_for(n, load, &mut rng));
    }
    model.start_measurement();
    for _ in 0..256 {
        model.step(&arrivals_for(n, load, &mut rng));
    }
    digest_report(&model.report(), model.queued())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_engine_matches_scalar_digest(
        n_idx in 0usize..3,
        which in 0usize..5,
        load_pct in 10u32..=100,
        seed in any::<u64>(),
    ) {
        let n = [4usize, 16, 64][n_idx];
        let load = load_pct as f64 / 100.0;
        let mut batch = BatchCrossbar::new(n, make_scheduler(which, n, seed));
        let mut scalar = CrossbarSwitch::with_ports(n, make_scheduler(which, n, seed));
        let db = run_digest(&mut batch, n, load, seed ^ 0x5eed);
        let ds = run_digest(&mut scalar, n, load, seed ^ 0x5eed);
        prop_assert_eq!(
            db, ds,
            "batch and scalar engines diverged: scheduler {} n {} load {}",
            which, n, load
        );
    }
}
