//! CBR service invariant (§4): every flow with a Slepian–Duguid frame
//! reservation receives exactly its reserved slots per frame, no matter
//! how much datagram traffic competes for the fabric.

use an2_sched::{FrameSchedule, InputPort, OutputPort};
use an2_sim::cell::Arrival;
use an2_sim::hybrid_switch::{ClassedArrival, HybridSwitch, ServiceClass};

fn classed(n: usize, i: usize, j: usize, class: ServiceClass) -> ClassedArrival {
    ClassedArrival {
        arrival: Arrival::pair(n, InputPort::new(i), OutputPort::new(j)),
        class,
    }
}

/// Reserves a small demand matrix, injects exactly that demand per frame
/// (plus saturating VBR background), and asserts the per-frame CBR
/// departure count equals the reserved cell count from the second frame
/// on — the "exactly their reserved slots" invariant.
#[test]
fn cbr_flows_get_exactly_their_reserved_slots_per_frame() {
    let n = 4;
    let frame_len = 4;
    let mut fs = FrameSchedule::new(n, frame_len);
    // (input, output, cells per frame); total demand 6 of 16 frame slots.
    let demand = [(0usize, 1usize, 2usize), (1, 0, 1), (2, 3, 3)];
    for &(i, j, cells) in &demand {
        fs.reserve(InputPort::new(i), OutputPort::new(j), cells)
            .expect("loads are below the frame length");
    }
    assert!(fs.verify(), "reservation table must be self-consistent");
    let per_frame: u64 = demand.iter().map(|&(_, _, c)| c as u64).sum();

    let mut sw = HybridSwitch::new(fs, 0xCB4);
    let frames = 50u64;
    let mut last_cbr = 0u64;
    for frame in 0..frames {
        for offset in 0..frame_len {
            let mut arrivals = Vec::new();
            for &(i, j, cells) in &demand {
                // One CBR cell per input per slot: pair (i, j) injects on
                // the first `cells` offsets of each frame.
                if offset < cells {
                    arrivals.push(classed(n, i, j, ServiceClass::Cbr));
                } else {
                    // Off-slots become VBR background from the same input.
                    arrivals.push(classed(n, i, (j + 1) % n, ServiceClass::Vbr));
                }
            }
            // Input 3 floods datagrams at the busiest CBR output.
            arrivals.push(classed(n, 3, 3, ServiceClass::Vbr));
            sw.step_classed(&arrivals);
        }
        let (cbr, _) = sw.departures_by_class();
        if frame >= 1 {
            assert_eq!(
                cbr - last_cbr,
                per_frame,
                "frame {frame}: CBR served a different number of slots than reserved"
            );
        }
        last_cbr = cbr;
    }

    let (cbr, vbr) = sw.departures_by_class();
    assert!(cbr >= (frames - 1) * per_frame);
    assert!(vbr > 0, "datagram traffic still flows around the reservations");
    assert_eq!(sw.drops(), 0, "unbounded buffers drop nothing");
    assert!(
        sw.cbr_queued() <= per_frame as usize,
        "CBR backlog must stay bounded by one frame of demand"
    );
}

/// An idle reservation must not block datagram traffic: with no CBR cells
/// queued, VBR cells ride through slots the frame nominally reserves.
#[test]
fn idle_reservations_fall_back_to_datagram_service() {
    let n = 4;
    let mut fs = FrameSchedule::new(n, 4);
    fs.reserve(InputPort::new(0), OutputPort::new(1), 4)
        .expect("full input-0 reservation fits");
    let mut sw = HybridSwitch::new(fs, 0xFA11);
    for _ in 0..64 {
        // Only VBR traffic, on the very pair the frame reserves.
        sw.step_classed(&[classed(n, 0, 1, ServiceClass::Vbr)]);
    }
    let (cbr, vbr) = sw.departures_by_class();
    assert_eq!(cbr, 0);
    assert_eq!(vbr, 64, "every VBR cell crossed during the idle reservation");
    assert_eq!(sw.vbr_queued(), 0);
}
