//! Acceptance tests for the replay + shrink harness: a seeded scheduler
//! bug must be caught by the invariant checker, captured as a
//! self-contained `replay.json`, replayed to the exact failing slot, and
//! shrunk to a small failing case.

use an2_verify::{run_case, shrink, ReplayCase};

/// The seeded bug from ISSUE.md: an off-by-one in PIM's accept phase,
/// injected through `Pim::debug_set_accept_skew`.
fn seeded_bug_case() -> ReplayCase {
    let mut case = ReplayCase::new(16, 0xA11CE, 0.3, 4096);
    case.accept_skew = 1;
    case
}

#[test]
fn checker_catches_the_seeded_accept_bug() {
    let out = run_case(&seeded_bug_case());
    let v = out.violation.expect("the skewed accept phase must be caught");
    assert_eq!(v.rule, "respects", "a skewed accept matches unrequested pairs");
    assert_eq!(out.slots_run, v.slot + 1, "the run stops at the failing slot");
}

#[test]
fn replay_json_round_trips_and_reproduces_the_exact_slot() {
    let mut case = seeded_bug_case();
    let v = run_case(&case).violation.expect("must fail");
    case.annotate(&v);

    // What an2-repro writes on violation...
    let json = case.to_json();
    // ...is what `an2-repro replay <file>` reads back,
    let parsed = ReplayCase::from_json(&json).expect("replay.json must parse");
    assert_eq!(parsed, case, "serialisation must be lossless");

    // and re-running it lands on the same slot with the same rule.
    let replayed = run_case(&parsed)
        .violation
        .expect("a captured case must still fail on replay");
    assert_eq!(replayed.slot, v.slot);
    assert_eq!(replayed.rule, v.rule);
}

#[test]
fn shrinker_reduces_to_a_small_failing_case() {
    let case = seeded_bug_case();
    let shrunk = shrink(&case).expect("a failing case must shrink to a failing case");

    // ISSUE.md acceptance: the shrunk reproduction is tiny.
    assert!(
        shrunk.slots <= 32,
        "shrunk case still needs {} slots",
        shrunk.slots
    );
    assert!(
        shrunk.active_ports < case.active_ports,
        "shrinking should retire idle ports (still {})",
        shrunk.active_ports
    );

    // The shrunk case still fails, exactly where its annotations claim.
    let out = run_case(&shrunk);
    let v = out.violation.expect("shrunk case must preserve the failure");
    assert_eq!(shrunk.failing_slot, Some(v.slot));
    assert_eq!(shrunk.rule.as_deref(), Some(v.rule));

    // And it round-trips through JSON like any other case.
    let parsed = ReplayCase::from_json(&shrunk.to_json()).unwrap();
    assert_eq!(parsed, shrunk);
    assert!(run_case(&parsed).violation.is_some());
}

#[test]
fn clean_cases_do_not_shrink() {
    assert!(shrink(&ReplayCase::new(8, 0xC1EA4, 0.5, 128)).is_none());
}
