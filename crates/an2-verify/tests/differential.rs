//! Differential oracles: every optimised implementation re-checked
//! against a naive reference on random instances, and simulated delays
//! cross-checked against the paper's analytic formulas.

use an2_sched::maximum::hopcroft_karp;
use an2_sched::pim::{AcceptPolicy, IterationLimit};
use an2_sched::rng::{SelectRng, Xoshiro256};
use an2_sched::{FrameSchedule, InputPort, OutputPort, Pim, RequestMatrix, Scheduler};
use an2_sim::analytic::{hol_saturation_throughput, output_queueing_mean_delay};
use an2_sched::fifo::FifoPriority;
use an2_sim::fifo_switch::FifoSwitch;
use an2_sim::output_queued::OutputQueuedSwitch;
use an2_sim::sim::{simulate, SimConfig};
use an2_sim::traffic::RateMatrixTraffic;
use an2_sched::{Mwm, Serenade, WeightPolicy};
use an2_verify::oracle::{
    brute_force_max_weight_matching, frame_demand_feasible, kuhn_maximum_matching_size,
    within_confidence, ReferencePim,
};

/// Draws an identical instance in both representations.
fn random_instance(n: usize, density: f64, rng: &mut Xoshiro256) -> (RequestMatrix, Vec<Vec<bool>>) {
    let bools: Vec<Vec<bool>> = (0..n)
        .map(|_| (0..n).map(|_| rng.bernoulli(density)).collect())
        .collect();
    let reqs = RequestMatrix::from_fn(n, |i, j| bools[i][j]);
    (reqs, bools)
}

/// The core differential: the optimised `Pim` and the naive
/// `ReferencePim`, seeded identically, must produce *identical* matchings
/// slot after slot — for every accept policy and iteration limit, across
/// densities from empty to full. Any divergence convicts one of them.
#[test]
fn optimised_pim_equals_reference_pim_exactly() {
    let n = 16;
    let policies = [
        AcceptPolicy::Random,
        AcceptPolicy::RoundRobin,
        AcceptPolicy::LowestIndex,
    ];
    let limits = [
        IterationLimit::Fixed(1),
        IterationLimit::Fixed(4),
        IterationLimit::ToCompletion,
    ];
    for &policy in &policies {
        for &limit in &limits {
            let seed = 0xD1FF ^ (policy as u64) << 8;
            let mut fast = Pim::with_options(n, seed, limit, policy);
            let mut slow = ReferencePim::with_options(n, seed, limit, policy);
            let mut traffic_rng = Xoshiro256::seed_from(0xABC);
            let densities = [0.1, 0.5, 0.9, 1.0, 0.0];
            for slot in 0..200u64 {
                let density = densities[(slot as usize) % densities.len()];
                let (reqs, bools) = random_instance(n, density, &mut traffic_rng);
                let m = fast.schedule(&reqs);
                let r = slow.schedule(&bools);
                for (i, ri) in r.iter().enumerate() {
                    assert_eq!(
                        m.output_of(InputPort::new(i)).map(|j| j.index()),
                        *ri,
                        "policy {policy:?} limit {limit:?} slot {slot} input {i} diverged"
                    );
                }
            }
        }
    }
}

/// Hopcroft–Karp (word-parallel bitset rewrite) vs Kuhn (textbook
/// recursion): identical maximum-matching size on every instance.
#[test]
fn hopcroft_karp_matches_kuhn_sizes() {
    let mut rng = Xoshiro256::seed_from(0x7357);
    for trial in 0..300u64 {
        let n = 1 + (rng.index(24));
        let density = rng.uniform_f64();
        let (reqs, _) = random_instance(n, density, &mut rng);
        let hk = hopcroft_karp(&reqs);
        assert!(hk.respects(&reqs));
        assert!(hk.is_maximal(&reqs));
        assert_eq!(
            hk.len(),
            kuhn_maximum_matching_size(&reqs),
            "trial {trial}: n={n} density={density}"
        );
    }
}

/// The incremental Slepian–Duguid insert vs exhaustive backtracking:
/// a random demand matrix is admitted by `FrameSchedule` exactly when the
/// brute-force search can decompose it into frame slots — and both agree
/// with the load condition the theorem predicts.
#[test]
fn frame_schedule_matches_brute_force_feasibility() {
    let mut rng = Xoshiro256::seed_from(0xF3A5);
    for trial in 0..150u64 {
        let n = 2 + rng.index(3); // 2..=4
        let frame_len = 2 + rng.index(3); // 2..=4
        let demand: Vec<Vec<usize>> = (0..n)
            .map(|_| (0..n).map(|_| rng.index(frame_len + 1)).collect())
            .collect();

        let max_load = (0..n)
            .map(|k| {
                let row: usize = demand[k].iter().sum();
                let col: usize = (0..n).map(|i| demand[i][k]).sum();
                row.max(col)
            })
            .max()
            .unwrap();
        let feasible_by_load = max_load <= frame_len;

        let feasible_by_search = frame_demand_feasible(&demand, frame_len);
        assert_eq!(
            feasible_by_search, feasible_by_load,
            "trial {trial}: brute force disagrees with the Slepian–Duguid load condition"
        );

        let mut fs = FrameSchedule::new(n, frame_len);
        let mut admitted_all = true;
        'reserve: for (i, row) in demand.iter().enumerate() {
            for (j, &cells) in row.iter().enumerate() {
                if cells > 0
                    && fs
                        .reserve(InputPort::new(i), OutputPort::new(j), cells)
                        .is_err()
                {
                    admitted_all = false;
                    break 'reserve;
                }
            }
        }
        assert_eq!(
            admitted_all, feasible_by_search,
            "trial {trial}: FrameSchedule admission disagrees with brute force"
        );
        if admitted_all {
            assert!(fs.verify(), "trial {trial}: admitted schedule inconsistent");
        }
    }
}

/// Builds an MWM scheduler whose effective Q-matrix weight for each
/// requested pair is exactly `weights[i][j]` (≥ 1), by feeding the
/// policy-appropriate observation: LQF weighs the depth, OCF weighs
/// `age + 1`.
fn weighted_mwm(n: usize, policy: WeightPolicy, reqs: &RequestMatrix, weights: &[Vec<u32>]) -> Mwm {
    let mut s = Mwm::new(n, policy);
    for (i, j) in reqs.pairs() {
        let w = weights[i.index()][j.index()];
        match policy {
            WeightPolicy::Lqf => s.observe_queue(i, j, w, 0),
            WeightPolicy::Ocf => s.observe_queue(i, j, 0, w - 1),
        }
    }
    s
}

/// Runs one MWM-vs-brute-force differential: the solver's matching must
/// be legal, maximal over the requests, and achieve **exactly** the
/// DP-optimal total weight.
fn assert_mwm_optimal(
    n: usize,
    policy: WeightPolicy,
    reqs: &RequestMatrix,
    weights: &[Vec<u32>],
    label: &str,
) {
    let mut s = weighted_mwm(n, policy, reqs, weights);
    let m = s.schedule(reqs);
    assert!(m.respects(reqs), "{label}: illegal matching");
    assert!(m.is_maximal(reqs), "{label}: non-maximal matching");
    let achieved: i64 = m
        .pairs()
        .map(|(i, j)| i64::from(weights[i.index()][j.index()]))
        .sum();
    let optimal = brute_force_max_weight_matching(reqs, &|i, j| i64::from(weights[i][j]));
    assert_eq!(achieved, optimal, "{label}: achieved {achieved} vs optimal {optimal}");
}

/// The MWM differential, exhaustive regime: **every** request matrix on
/// switches up to 3×3 (2^9 patterns), under the all-ones weighting and a
/// deterministic non-uniform weighting, for both LQF and OCF. Beyond
/// N=3 exhaustion is astronomically infeasible (2^(N²) patterns); the
/// random tests below cover the larger radii.
#[test]
fn mwm_matches_brute_force_on_every_tiny_request_matrix() {
    for n in 1usize..=3 {
        let cells = n * n;
        for pattern in 0u32..(1 << cells) {
            let reqs = RequestMatrix::from_fn(n, |i, j| pattern & (1 << (i * n + j)) != 0);
            let flat: Vec<Vec<u32>> = (0..n)
                .map(|i| (0..n).map(|j| ((i * 7 + j * 13) % 9 + 1) as u32).collect())
                .collect();
            let ones = vec![vec![1u32; n]; n];
            for weights in [&ones, &flat] {
                for policy in [WeightPolicy::Lqf, WeightPolicy::Ocf] {
                    let label = format!("n={n} pattern={pattern:#b} policy={policy:?}");
                    assert_mwm_optimal(n, policy, &reqs, weights, &label);
                }
            }
        }
    }
}

/// The MWM differential, dense-random regime: ≥ 1000 random (pattern,
/// weight) instances across N = 4..=8 — per policy — spanning densities
/// from near-empty to full.
#[test]
fn mwm_matches_brute_force_on_random_small_switches() {
    let mut rng = Xoshiro256::seed_from(0x3A11_1992);
    for policy in [WeightPolicy::Lqf, WeightPolicy::Ocf] {
        for n in 4usize..=8 {
            for trial in 0..250u64 {
                let density = rng.uniform_f64();
                let reqs = RequestMatrix::random(n, density, &mut rng);
                let weights: Vec<Vec<u32>> = (0..n)
                    .map(|_| (0..n).map(|_| 1 + rng.index(16) as u32).collect())
                    .collect();
                let label = format!("n={n} trial={trial} policy={policy:?}");
                assert_mwm_optimal(n, policy, &reqs, &weights, &label);
            }
        }
    }
}

/// The MWM differential, sparse-wide regime: ≥ 1000 random instances at
/// radii up to N=32. The oracle's DP is exponential in the number of
/// *distinct requested columns*, so instances bound that footprint (≤ 10
/// columns) while rows, weights, and the column choice stay random —
/// exactly the sparse shape the wide engine schedules.
#[test]
fn mwm_matches_brute_force_on_sparse_wide_switches() {
    let mut rng = Xoshiro256::seed_from(0x3A11_0032);
    for trial in 0..1000u64 {
        let policy = if trial % 2 == 0 { WeightPolicy::Lqf } else { WeightPolicy::Ocf };
        let n = 9 + rng.index(24); // 9..=32
        let footprint = 1 + rng.index(10);
        let cols: Vec<usize> = (0..footprint).map(|_| rng.index(n)).collect();
        let reqs = RequestMatrix::from_fn(n, |_, j| {
            cols.contains(&j) && rng.bernoulli(0.35)
        });
        let weights: Vec<Vec<u32>> = (0..n)
            .map(|_| (0..n).map(|_| 1 + rng.index(100) as u32).collect())
            .collect();
        let label = format!("n={n} trial={trial} policy={policy:?}");
        assert_mwm_optimal(n, policy, &reqs, &weights, &label);
    }
}

/// SERENADE's merge contract on every case: both random proposals are
/// valid maximal matchings, the merged result is a valid matching, and
/// its Q-matrix weight weakly improves on **both** inputs.
#[test]
fn serenade_merge_is_valid_and_weakly_improving() {
    let mut rng = Xoshiro256::seed_from(0x5E3E_1992);
    for trial in 0..500u64 {
        let n = 2 + rng.index(31); // 2..=32
        let density = rng.uniform_f64();
        let reqs = RequestMatrix::random(n, density, &mut rng);
        let mut s = Serenade::new(n, trial);
        for (i, j) in reqs.pairs() {
            s.observe_queue(i, j, 1 + rng.index(32) as u32, 0);
        }
        let (a, b, merged) = s.schedule_with_proposals(&reqs);
        for (m, which) in [(&a, "A"), (&b, "B")] {
            assert!(m.respects(&reqs), "trial {trial}: proposal {which} illegal");
            assert!(m.is_maximal(&reqs), "trial {trial}: proposal {which} not maximal");
        }
        assert!(merged.respects(&reqs), "trial {trial}: merge illegal");
        let (wa, wb, wm) = (s.weight_of(&a), s.weight_of(&b), s.weight_of(&merged));
        assert!(
            wm >= wa.max(wb),
            "trial {trial}: merged weight {wm} < max({wa}, {wb})"
        );
    }
}

/// Simulated perfect-output-queueing delay vs the paper's M/D/1-based
/// closed form, within confidence bounds.
#[test]
fn output_queueing_delay_matches_analytic_formula() {
    let n = 16;
    let cfg = SimConfig {
        warmup_slots: 4_000,
        measure_slots: 30_000,
    };
    for rho in [0.4, 0.7, 0.9] {
        let mut sw = OutputQueuedSwitch::new(n);
        let mut t = RateMatrixTraffic::uniform(n, rho, 0x0DD5);
        let measured = simulate(&mut sw, &mut t, cfg).delay.mean();
        let predicted = output_queueing_mean_delay(n, rho);
        assert!(
            within_confidence(measured, predicted, 0.08, 0.05),
            "rho={rho}: simulated {measured} vs analytic {predicted}"
        );
    }
}

/// Simulated FIFO saturation throughput vs Karol's exact finite-N values.
#[test]
fn fifo_saturation_matches_karol_values() {
    let cfg = SimConfig {
        warmup_slots: 4_000,
        measure_slots: 30_000,
    };
    for n in [2usize, 4, 8] {
        let mut sw = FifoSwitch::new(n, FifoPriority::Random, 0xF1F0);
        let mut t = RateMatrixTraffic::uniform(n, 1.0, 0xF1F1);
        let measured = simulate(&mut sw, &mut t, cfg).mean_output_utilization();
        let predicted = hol_saturation_throughput(n).unwrap();
        assert!(
            within_confidence(measured, predicted, 0.03, 0.0),
            "N={n}: simulated saturation {measured} vs Karol {predicted}"
        );
    }
}

/// The sparse active-pair grant walk vs the retained dense kernels at the
/// full wide radix. `schedule` prunes the grant phase to the outputs that
/// actually hold requests (per-column nonzero-word successor lookup,
/// hybrid eligible assembly); `schedule_dense` and PIM's tracked path are
/// the original O(N·W) sweeps, kept precisely so this oracle can convict
/// either side of any divergence — in matchings *and* in hidden state
/// (round-robin pointers, per-port RNG streams), which is why the run is
/// long and the schedulers are never reseeded mid-run.
#[test]
fn sparse_wide_kernels_equal_dense_oracles_exactly() {
    use an2_sched::islip::WideRoundRobinMatching;
    use an2_sched::{WidePim, WideRequestMatrix};

    let n = 1024;
    let mut islip_sparse = WideRoundRobinMatching::islip(n, 4);
    let mut islip_dense = islip_sparse.clone();
    let mut rrm_sparse = WideRoundRobinMatching::rrm(n, 4);
    let mut rrm_dense = rrm_sparse.clone();
    let mut pim_fast = WidePim::new(n, 0x5BA2_1992);
    let mut pim_tracked = pim_fast.clone();
    let mut traffic_rng = Xoshiro256::seed_from(0x5AC7);
    // Sweep the density regimes the sparse path specializes: near-empty
    // (active-set pruning dominates), light (the headline N=1024 operating
    // point), and moderate (the hybrid assembly's dense branch).
    let densities = [0.0, 0.0001, 0.001, 0.01, 0.2];
    for slot in 0..40u64 {
        let density = densities[(slot as usize) % densities.len()];
        let reqs = WideRequestMatrix::random(n, density, &mut traffic_rng);
        assert_eq!(
            islip_sparse.schedule(&reqs),
            islip_dense.schedule_dense(&reqs),
            "islip diverged at slot {slot} density {density}"
        );
        assert_eq!(
            rrm_sparse.schedule(&reqs),
            rrm_dense.schedule_dense(&reqs),
            "rrm diverged at slot {slot} density {density}"
        );
        assert_eq!(
            pim_fast.schedule(&reqs),
            pim_tracked.schedule_with_stats(&reqs).0,
            "pim diverged at slot {slot} density {density}"
        );
    }
}
