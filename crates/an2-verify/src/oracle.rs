//! Naive reference implementations the optimised schedulers are checked
//! against.
//!
//! Every oracle here favours obviousness over speed: plain `Vec`s, no
//! bitsets, no scratch reuse, recursion where recursion is clearest. A
//! differential test runs the optimised implementation and its oracle on
//! the same instances and fails on the first divergence.

use an2_sched::pim::{AcceptPolicy, IterationLimit};
use an2_sched::rng::{SelectRng, Xoshiro256};
use an2_sched::RequestMatrix;

/// Textbook PIM over `Vec<Vec<bool>>` request matrices.
///
/// Replicates `an2_sched::Pim`'s randomness *exactly*: the same per-port
/// streams (`root.split(j)` for output grants, `root.split(0x1_0000 + i)`
/// for input accepts), the same draw discipline (an empty candidate set
/// draws nothing; a non-empty one draws one bounded index and picks the
/// index-th smallest member), the same phase order and early exit. Given
/// the same seed and request sequence, the reference and the optimised
/// scheduler must therefore produce **identical matchings, slot after
/// slot** — any divergence convicts one of them.
#[derive(Clone, Debug)]
pub struct ReferencePim {
    n: usize,
    limit: IterationLimit,
    accept: AcceptPolicy,
    output_rng: Vec<Xoshiro256>,
    input_rng: Vec<Xoshiro256>,
    accept_ptr: Vec<usize>,
}

impl ReferencePim {
    /// Mirrors `Pim::new`: four iterations, random accept.
    pub fn new(n: usize, seed: u64) -> Self {
        Self::with_options(n, seed, IterationLimit::Fixed(4), AcceptPolicy::Random)
    }

    /// Mirrors `Pim::with_options`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_options(
        n: usize,
        seed: u64,
        limit: IterationLimit,
        accept: AcceptPolicy,
    ) -> Self {
        assert!(n > 0, "switch must have at least one port");
        let root = Xoshiro256::seed_from(seed);
        Self {
            n,
            limit,
            accept,
            output_rng: (0..n).map(|j| root.split(j as u64)).collect(),
            input_rng: (0..n).map(|i| root.split(0x1_0000 + i as u64)).collect(),
            accept_ptr: vec![0; n],
        }
    }

    /// The switch radix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Schedules one slot; `out[i]` is the output matched to input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is not `n`×`n`.
    pub fn schedule(&mut self, requests: &[Vec<bool>]) -> Vec<Option<usize>> {
        let n = self.n;
        assert_eq!(requests.len(), n, "request matrix must be n x n");
        for row in requests {
            assert_eq!(row.len(), n, "request matrix must be n x n");
        }
        let mut out_of: Vec<Option<usize>> = vec![None; n];
        let mut in_of: Vec<Option<usize>> = vec![None; n];
        let max_iters = match self.limit {
            IterationLimit::Fixed(k) => k,
            IterationLimit::ToCompletion => n,
        };
        for _ in 0..max_iters {
            // Request phase: unmatched inputs with a cell for unmatched j,
            // in ascending input order (the order `PortSet` iterates).
            let mut requests_to: Vec<Vec<usize>> = vec![Vec::new(); n];
            let mut any_request = false;
            for (j, to) in requests_to.iter_mut().enumerate() {
                if in_of[j].is_some() {
                    continue;
                }
                for (i, row) in requests.iter().enumerate() {
                    if out_of[i].is_none() && row[j] {
                        to.push(i);
                    }
                }
                any_request |= !to.is_empty();
            }
            if any_request {
                // matches the optimised early exit before any draw
            } else {
                break;
            }

            // Grant phase: each output with requests draws once.
            let mut grants_to: Vec<Vec<usize>> = vec![Vec::new(); n];
            for j in 0..n {
                if in_of[j].is_some() {
                    continue;
                }
                let cands = &requests_to[j];
                if cands.is_empty() {
                    continue;
                }
                let i = cands[self.output_rng[j].index(cands.len())];
                grants_to[i].push(j);
            }

            // Accept phase: each granted input picks one grant. `grants`
            // is ascending because the grant loop ran in ascending j.
            for i in 0..n {
                if out_of[i].is_some() {
                    continue;
                }
                let grants = &grants_to[i];
                if grants.is_empty() {
                    continue;
                }
                let j = match self.accept {
                    AcceptPolicy::Random => grants[self.input_rng[i].index(grants.len())],
                    AcceptPolicy::RoundRobin => {
                        let ptr = self.accept_ptr[i];
                        let j = grants
                            .iter()
                            .copied()
                            .find(|&g| g >= ptr)
                            .unwrap_or(grants[0]);
                        self.accept_ptr[i] = (j + 1) % n;
                        j
                    }
                    AcceptPolicy::LowestIndex => grants[0],
                };
                out_of[i] = Some(j);
                in_of[j] = Some(i);
            }
        }
        out_of
    }
}

/// Kuhn's augmenting-path maximum matching — the classic `O(V · E)`
/// recursive formulation — returning the maximum matching size.
///
/// The reference oracle for the optimised bitset Hopcroft–Karp: both must
/// report the same size on every instance (the matchings themselves may
/// legitimately differ).
pub fn kuhn_maximum_matching_size(requests: &RequestMatrix) -> usize {
    const NIL: usize = usize::MAX;
    let n = requests.n();

    fn try_augment(
        i: usize,
        requests: &RequestMatrix,
        seen: &mut [bool],
        match_out: &mut [usize],
    ) -> bool {
        let n = requests.n();
        for j in 0..n {
            if !requests.has(an2_sched::InputPort::new(i), an2_sched::OutputPort::new(j))
                || seen[j]
            {
                continue;
            }
            seen[j] = true;
            if match_out[j] == NIL || try_augment(match_out[j], requests, seen, match_out) {
                match_out[j] = i;
                return true;
            }
        }
        false
    }

    let mut match_out = vec![NIL; n];
    let mut size = 0;
    for i in 0..n {
        let mut seen = vec![false; n];
        if try_augment(i, requests, &mut seen, &mut match_out) {
            size += 1;
        }
    }
    size
}

/// Brute-force frame-schedule feasibility: can `demand` (cells per pair
/// per frame) be decomposed into `frame_len` partial matchings?
///
/// Exhaustive backtracking over unit cells with one symmetry reduction
/// (empty frame slots are interchangeable, so only the first empty slot
/// is ever tried). The oracle for the incremental Slepian–Duguid insert:
/// by the theorem, feasibility should hold exactly when every input and
/// output load is at most `frame_len` — this search proves it per
/// instance without invoking the theorem. Keep instances small (`n`,
/// `frame_len` ≲ 6): the search is exponential by design.
///
/// # Panics
///
/// Panics if `demand` is not square.
pub fn frame_demand_feasible(demand: &[Vec<usize>], frame_len: usize) -> bool {
    let n = demand.len();
    for row in demand {
        assert_eq!(row.len(), n, "demand matrix must be square");
    }
    let mut cells = Vec::new();
    for (i, row) in demand.iter().enumerate() {
        for (j, &count) in row.iter().enumerate() {
            for _ in 0..count {
                cells.push((i, j));
            }
        }
    }
    if cells.len() > n * frame_len {
        return false;
    }

    struct Search<'a> {
        cells: &'a [(usize, usize)],
        in_used: Vec<Vec<bool>>,
        out_used: Vec<Vec<bool>>,
        slot_load: Vec<usize>,
    }
    impl Search<'_> {
        fn place(&mut self, k: usize) -> bool {
            if k == self.cells.len() {
                return true;
            }
            let (i, j) = self.cells[k];
            let mut tried_empty = false;
            for s in 0..self.slot_load.len() {
                if self.slot_load[s] == 0 {
                    if tried_empty {
                        continue; // interchangeable with the one we tried
                    }
                    tried_empty = true;
                }
                if self.in_used[s][i] || self.out_used[s][j] {
                    continue;
                }
                self.in_used[s][i] = true;
                self.out_used[s][j] = true;
                self.slot_load[s] += 1;
                if self.place(k + 1) {
                    return true;
                }
                self.in_used[s][i] = false;
                self.out_used[s][j] = false;
                self.slot_load[s] -= 1;
            }
            false
        }
    }

    Search {
        cells: &cells,
        in_used: vec![vec![false; n]; frame_len],
        out_used: vec![vec![false; n]; frame_len],
        slot_load: vec![0; frame_len],
    }
    .place(0)
}

/// Exact maximum-weight matching value by dynamic programming over
/// subsets of the **active** output columns — `O(R · 2^C · C)` for `R`
/// nonempty rows and `C` nonempty columns, factorial-free.
///
/// The differential oracle for the MWM scheduler family: the optimised
/// augmenting-path solver must achieve exactly this total weight on
/// every instance (the matchings themselves may legitimately differ when
/// several are optimal). `weight(i, j)` is consulted only for requested
/// pairs and must be positive, mirroring the scheduler's ≥ 1 clamp.
///
/// Subsets are taken over the *distinct requested columns* rather than
/// all `N` outputs, so sparse wide instances (say 32 ports but 10
/// requested outputs) stay cheap; generate oracle instances with a
/// bounded column footprint rather than a bounded radix.
///
/// # Panics
///
/// Panics if more than 20 distinct columns hold requests (the DP table
/// would exceed a million entries — shrink the instance instead).
pub fn brute_force_max_weight_matching<const W: usize>(
    requests: &an2_sched::RequestMatrixN<W>,
    weight: &dyn Fn(usize, usize) -> i64,
) -> i64 {
    use an2_sched::{InputPort, OutputPort};
    let cols: Vec<usize> = requests.nonempty_cols().iter().collect();
    let c = cols.len();
    assert!(
        c <= 20,
        "brute-force max-weight DP supports at most 20 active columns, got {c}"
    );
    const UNREACHED: i64 = i64::MIN;
    // dp[mask] = best total weight of any matching that uses exactly the
    // columns in `mask`, over the rows processed so far.
    let mut dp = vec![UNREACHED; 1 << c];
    dp[0] = 0;
    for i in requests.nonempty_rows().iter() {
        let prev = dp.clone();
        for (mask, &base) in prev.iter().enumerate() {
            if base == UNREACHED {
                continue;
            }
            for (bit, &j) in cols.iter().enumerate() {
                if mask & (1 << bit) == 0
                    && requests.has(InputPort::new(i), OutputPort::new(j))
                {
                    let extended = base + weight(i, j);
                    if extended > dp[mask | (1 << bit)] {
                        dp[mask | (1 << bit)] = extended;
                    }
                }
            }
        }
    }
    dp.into_iter().max().expect("dp table is never empty")
}

/// Whether `measured` agrees with an analytic `predicted` value within
/// `rel_tol` relative error (plus `abs_tol` slack for near-zero targets).
///
/// The confidence bound for the M/D/1 / Karol cross-checks: simulations
/// are finite, so exact equality is never expected.
pub fn within_confidence(measured: f64, predicted: f64, rel_tol: f64, abs_tol: f64) -> bool {
    (measured - predicted).abs() <= predicted.abs() * rel_tol + abs_tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kuhn_on_a_known_instance() {
        // Perfect matching exists on the identity plus one extra edge.
        let reqs = RequestMatrix::from_fn(4, |i, j| i == j || (i == 0 && j == 1));
        assert_eq!(kuhn_maximum_matching_size(&reqs), 4);
        // A star: all inputs want output 0 only.
        let star = RequestMatrix::from_fn(4, |_, j| j == 0);
        assert_eq!(kuhn_maximum_matching_size(&star), 1);
    }

    #[test]
    fn frame_feasibility_matches_the_load_condition() {
        // Loads <= frame_len: feasible.
        let ok = vec![vec![2, 1, 0], vec![1, 0, 2], vec![0, 2, 1]];
        assert!(frame_demand_feasible(&ok, 3));
        // One output overloaded: infeasible.
        let over = vec![vec![2, 0, 0], vec![2, 0, 0], vec![0, 0, 0]];
        assert!(!frame_demand_feasible(&over, 3));
    }

    #[test]
    fn max_weight_dp_on_known_instances() {
        // Diagonal wins over the heavier single edge plus nothing.
        let reqs = RequestMatrix::from_pairs(3, [(0, 0), (0, 1), (1, 0), (2, 2)]);
        let w = |i: usize, j: usize| -> i64 { [[5, 9, 1], [8, 1, 1], [1, 1, 3]][i][j] };
        // Options: {0-1, 1-0, 2-2} = 9 + 8 + 3 = 20 is optimal.
        assert_eq!(brute_force_max_weight_matching(&reqs, &w), 20);
        // Empty matrix: the empty matching.
        assert_eq!(
            brute_force_max_weight_matching(&RequestMatrix::new(4), &|_, _| 1),
            0
        );
    }

    #[test]
    fn max_weight_dp_matches_naive_recursion() {
        // Cross-check the subset DP against a transparent skip-or-match
        // recursion on tiny random instances.
        fn naive(reqs: &RequestMatrix, w: &dyn Fn(usize, usize) -> i64) -> i64 {
            fn go(
                reqs: &RequestMatrix,
                w: &dyn Fn(usize, usize) -> i64,
                i: usize,
                used: &mut Vec<bool>,
            ) -> i64 {
                if i == reqs.n() {
                    return 0;
                }
                let mut best = go(reqs, w, i + 1, used);
                for j in 0..reqs.n() {
                    if !used[j]
                        && reqs.has(
                            an2_sched::InputPort::new(i),
                            an2_sched::OutputPort::new(j),
                        )
                    {
                        used[j] = true;
                        best = best.max(w(i, j) + go(reqs, w, i + 1, used));
                        used[j] = false;
                    }
                }
                best
            }
            go(reqs, w, 0, &mut vec![false; reqs.n()])
        }
        let mut rng = Xoshiro256::seed_from(0xD0);
        for _ in 0..100 {
            let n = 1 + rng.index(6);
            let density = rng.uniform_f64();
            let reqs = RequestMatrix::from_fn(n, |_, _| rng.bernoulli(density));
            let weights: Vec<i64> = (0..n * n).map(|_| 1 + rng.index(9) as i64).collect();
            let w = |i: usize, j: usize| weights[i * n + j];
            assert_eq!(
                brute_force_max_weight_matching(&reqs, &w),
                naive(&reqs, &w)
            );
        }
    }

    #[test]
    fn confidence_bounds() {
        assert!(within_confidence(1.02, 1.0, 0.05, 0.0));
        assert!(!within_confidence(1.2, 1.0, 0.05, 0.0));
        assert!(within_confidence(0.001, 0.0, 0.05, 0.01));
    }
}
