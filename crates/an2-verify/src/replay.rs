//! Self-contained replay cases: serialise a failing probe to JSON,
//! re-execute it deterministically, and shrink it.
//!
//! A [`ReplayCase`] captures everything the probe runner needs — switch
//! size, root seed, slot budget, traffic load, scheduler configuration
//! (including the hidden accept-skew bug hook), buffer capacity, and a
//! scripted fault plan — so a `replay.json` emitted on one machine
//! re-executes to the exact same failing slot on any other. The JSON is
//! hand-rolled like the rest of the repo (no serde in the build image).

use crate::runner::run_case;
use an2_sched::check::Violation;
use an2_sched::pim::AcceptPolicy;

/// A deterministic, self-contained scheduler/switch probe.
///
/// `slots`, `seed`, and the scheduler fields fully determine the run;
/// `failing_slot`/`rule` are annotations stamped when a case is captured
/// from a violation (ignored on replay — the run re-derives them).
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayCase {
    /// Schema version (1).
    pub version: u32,
    /// Switch radix.
    pub n: usize,
    /// Traffic is restricted to the first `active_ports` inputs/outputs;
    /// the shrinker lowers this. Clamped to `1..=n`.
    pub active_ports: usize,
    /// Root seed: scheduler streams and traffic streams derive from it.
    pub seed: u64,
    /// Per-input Bernoulli arrival probability per slot.
    pub load: f64,
    /// Slot budget.
    pub slots: u64,
    /// PIM iteration budget; 0 means run to completion.
    pub iterations: usize,
    /// Accept policy: "random", "round-robin", or "lowest".
    pub accept: String,
    /// The seeded-bug hook (`Pim::debug_set_accept_skew`); 0 = correct.
    pub accept_skew: usize,
    /// Per-(input, output) VOQ capacity; `None` = unbounded.
    pub pair_capacity: Option<usize>,
    /// Whether the checker should also demand maximal matchings.
    pub expect_maximal: bool,
    /// Fault plan: `(slot, input)` arrivals corrupted on the wire.
    pub corrupt: Vec<(u64, usize)>,
    /// Annotation: slot of the captured violation.
    pub failing_slot: Option<u64>,
    /// Annotation: rule of the captured violation.
    pub rule: Option<String>,
}

impl ReplayCase {
    /// A correct-by-default probe: PIM(4), random accept, no faults.
    pub fn new(n: usize, seed: u64, load: f64, slots: u64) -> Self {
        Self {
            version: 1,
            n,
            active_ports: n,
            seed,
            load,
            slots,
            iterations: 4,
            accept: "random".to_owned(),
            accept_skew: 0,
            pair_capacity: None,
            expect_maximal: false,
            corrupt: Vec::new(),
            failing_slot: None,
            rule: None,
        }
    }

    /// The accept policy this case names.
    ///
    /// # Panics
    ///
    /// Panics on an unknown policy name (callers parse via
    /// [`ReplayCase::from_json`], which validates).
    pub fn accept_policy(&self) -> AcceptPolicy {
        match self.accept.as_str() {
            "random" => AcceptPolicy::Random,
            "round-robin" => AcceptPolicy::RoundRobin,
            "lowest" => AcceptPolicy::LowestIndex,
            other => panic!("unknown accept policy {other:?}"),
        }
    }

    /// Whether this case corrupts the arrival at `input` on `slot`.
    pub fn is_corrupted(&self, slot: u64, input: usize) -> bool {
        self.corrupt.iter().any(|&(s, i)| s == slot && i == input)
    }

    /// Stamps the violation annotations onto this case.
    pub fn annotate(&mut self, v: &Violation) {
        self.failing_slot = Some(v.slot);
        self.rule = Some(v.rule.to_owned());
    }

    /// Serialises to the `replay.json` format.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\n");
        s.push_str(&format!("  \"version\": {},\n", self.version));
        s.push_str(&format!("  \"n\": {},\n", self.n));
        s.push_str(&format!("  \"active_ports\": {},\n", self.active_ports));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"load\": {},\n", self.load));
        s.push_str(&format!("  \"slots\": {},\n", self.slots));
        s.push_str(&format!("  \"iterations\": {},\n", self.iterations));
        s.push_str(&format!("  \"accept\": \"{}\",\n", self.accept));
        s.push_str(&format!("  \"accept_skew\": {},\n", self.accept_skew));
        match self.pair_capacity {
            Some(c) => s.push_str(&format!("  \"pair_capacity\": {c},\n")),
            None => s.push_str("  \"pair_capacity\": null,\n"),
        }
        s.push_str(&format!(
            "  \"expect_maximal\": {},\n",
            self.expect_maximal
        ));
        s.push_str("  \"corrupt\": [");
        for (k, (slot, input)) in self.corrupt.iter().enumerate() {
            if k > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("[{slot}, {input}]"));
        }
        s.push_str("],\n");
        match self.failing_slot {
            Some(f) => s.push_str(&format!("  \"failing_slot\": {f},\n")),
            None => s.push_str("  \"failing_slot\": null,\n"),
        }
        match &self.rule {
            Some(r) => s.push_str(&format!("  \"rule\": \"{r}\"\n")),
            None => s.push_str("  \"rule\": null\n"),
        }
        s.push_str("}\n");
        s
    }

    /// Parses the `replay.json` format (tolerant of whitespace and key
    /// order; the annotation keys may be absent).
    pub fn from_json(json: &str) -> Result<Self, String> {
        let case = Self {
            version: u64_field(json, "version")? as u32,
            n: u64_field(json, "n")? as usize,
            active_ports: u64_field(json, "active_ports")? as usize,
            seed: u64_field(json, "seed")?,
            load: f64_field(json, "load")?,
            slots: u64_field(json, "slots")?,
            iterations: u64_field(json, "iterations")? as usize,
            accept: str_field(json, "accept")?,
            accept_skew: u64_field(json, "accept_skew")? as usize,
            pair_capacity: opt_u64_field(json, "pair_capacity")?.map(|c| c as usize),
            expect_maximal: bool_field(json, "expect_maximal")?,
            corrupt: pairs_field(json, "corrupt")?,
            failing_slot: match value_after(json, "failing_slot") {
                Ok(_) => opt_u64_field(json, "failing_slot")?,
                Err(_) => None,
            },
            rule: match value_after(json, "rule") {
                Ok(v) if v.starts_with('"') => Some(str_field(json, "rule")?),
                _ => None,
            },
        };
        if case.version != 1 {
            return Err(format!("unsupported replay version {}", case.version));
        }
        if case.n == 0 || case.n > an2_sched::MAX_PORTS {
            return Err(format!("switch size {} out of range", case.n));
        }
        if !matches!(case.accept.as_str(), "random" | "round-robin" | "lowest") {
            return Err(format!("unknown accept policy {:?}", case.accept));
        }
        Ok(case)
    }
}

/// Greedily shrinks a failing case: first trims the slot budget to the
/// failing slot, then removes active ports one at a time as long as the
/// probe still fails (re-trimming slots after each successful removal).
///
/// Returns `None` if `case` does not fail at all. The result is
/// guaranteed to still fail, with its annotations updated.
pub fn shrink(case: &ReplayCase) -> Option<ReplayCase> {
    let outcome = run_case(case);
    let v = outcome.violation?;
    let mut best = case.clone();
    best.slots = v.slot + 1;
    best.annotate(&v);
    while best.active_ports > 1 {
        let mut cand = best.clone();
        cand.active_ports -= 1;
        // Restore the original budget: with fewer ports the failure may
        // surface later than the trimmed horizon.
        cand.slots = case.slots;
        match run_case(&cand).violation {
            Some(v2) => {
                cand.slots = v2.slot + 1;
                cand.annotate(&v2);
                best = cand;
            }
            None => break,
        }
    }
    Some(best)
}

// --- minimal flat-schema JSON field scanners ---------------------------
// The schema is one object with unique quoted keys, so locating
// `"key":` and parsing the single value after it is unambiguous. This is
// the same style as an2-bench's BENCH_sched.json reader.

fn value_after<'a>(json: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\"");
    let at = json
        .find(&pat)
        .ok_or_else(|| format!("replay.json: missing key \"{key}\""))?;
    let rest = &json[at + pat.len()..];
    let colon = rest
        .find(':')
        .ok_or_else(|| format!("replay.json: no value for \"{key}\""))?;
    Ok(rest[colon + 1..].trim_start())
}

fn lexeme(v: &str) -> &str {
    let end = v
        .find([',', '}', ']', '\n'])
        .unwrap_or(v.len());
    v[..end].trim()
}

fn u64_field(json: &str, key: &str) -> Result<u64, String> {
    lexeme(value_after(json, key)?)
        .parse()
        .map_err(|e| format!("replay.json: bad \"{key}\": {e}"))
}

fn f64_field(json: &str, key: &str) -> Result<f64, String> {
    lexeme(value_after(json, key)?)
        .parse()
        .map_err(|e| format!("replay.json: bad \"{key}\": {e}"))
}

fn bool_field(json: &str, key: &str) -> Result<bool, String> {
    match lexeme(value_after(json, key)?) {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("replay.json: bad \"{key}\": {other:?}")),
    }
}

fn opt_u64_field(json: &str, key: &str) -> Result<Option<u64>, String> {
    match lexeme(value_after(json, key)?) {
        "null" => Ok(None),
        num => num
            .parse()
            .map(Some)
            .map_err(|e| format!("replay.json: bad \"{key}\": {e}")),
    }
}

fn str_field(json: &str, key: &str) -> Result<String, String> {
    let v = value_after(json, key)?;
    let inner = v
        .strip_prefix('"')
        .ok_or_else(|| format!("replay.json: \"{key}\" is not a string"))?;
    let end = inner
        .find('"')
        .ok_or_else(|| format!("replay.json: unterminated string for \"{key}\""))?;
    Ok(inner[..end].to_owned())
}

fn pairs_field(json: &str, key: &str) -> Result<Vec<(u64, usize)>, String> {
    let v = value_after(json, key)?;
    let body = v
        .strip_prefix('[')
        .ok_or_else(|| format!("replay.json: \"{key}\" is not an array"))?;
    let end = body
        .find("]]")
        .map(|e| e + 1)
        .or_else(|| body.trim_start().starts_with(']').then_some(0));
    let Some(end) = end else {
        return Err(format!("replay.json: unterminated array for \"{key}\""));
    };
    let mut pairs = Vec::new();
    let mut nums: Vec<u64> = Vec::new();
    let mut cur = String::new();
    for ch in body[..end].chars() {
        match ch {
            '0'..='9' => cur.push(ch),
            _ => {
                if !cur.is_empty() {
                    nums.push(cur.parse().map_err(|e| format!("replay.json: {e}"))?);
                    cur.clear();
                }
            }
        }
    }
    if !cur.is_empty() {
        nums.push(cur.parse().map_err(|e| format!("replay.json: {e}"))?);
    }
    if !nums.len().is_multiple_of(2) {
        return Err(format!("replay.json: \"{key}\" pairs are uneven"));
    }
    for pair in nums.chunks_exact(2) {
        pairs.push((pair[0], pair[1] as usize));
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let mut case = ReplayCase::new(8, 1234, 0.3, 512);
        case.accept_skew = 1;
        case.pair_capacity = Some(16);
        case.corrupt = vec![(3, 1), (5, 0)];
        case.failing_slot = Some(7);
        case.rule = Some("respects".to_owned());
        let parsed = ReplayCase::from_json(&case.to_json()).expect("round trip");
        assert_eq!(parsed, case);
    }

    #[test]
    fn json_round_trips_with_nulls_and_empty_plan() {
        let case = ReplayCase::new(4, 9, 1.0, 64);
        let parsed = ReplayCase::from_json(&case.to_json()).expect("round trip");
        assert_eq!(parsed, case);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ReplayCase::from_json("{}").is_err());
        let mut case = ReplayCase::new(4, 9, 1.0, 64);
        case.accept = "sideways".to_owned();
        assert!(ReplayCase::from_json(&case.to_json()).is_err());
    }
}
