//! Verification layer for the AN2 reproduction.
//!
//! Three PRs of hot-path optimisation (zero-allocation scheduling, BMI2
//! bit tricks, a bitset Hopcroft–Karp, work-stealing parallelism) left the
//! repo's correctness story resting on pinned digests. This crate turns
//! that into machine-checked invariants, following the practice of the
//! SERENADE and iSLIP validation literature: check randomized schedulers
//! against exact naive references and closed-form queueing formulas.
//!
//! * [`oracle`] — **differential oracles**: a [`ReferencePim`] over plain
//!   `Vec<Vec<bool>>` matrices that replicates the optimised scheduler's
//!   draw discipline bit-for-bit, a Kuhn maximum-matching reference for
//!   Hopcroft–Karp, a brute-force frame-schedule feasibility search for
//!   the Slepian–Duguid construction, and confidence-bound helpers for
//!   the analytic M/D/1 and Karol cross-checks.
//! * [`runner`] — an **invariant-checked probe runner** that drives a
//!   scheduler + VOQ pair slot by slot, re-verifying after every slot
//!   that the matching is a legal (optionally maximal) permutation
//!   submatrix of the requests, that VOQ occupancy respects capacity, and
//!   that cells are conserved. Unlike `an2_sched::CheckedScheduler`
//!   (which compiles its checks away in plain release builds) the runner
//!   always checks — it exists to be asked.
//! * [`replay`] — a **deterministic replay + shrink harness**: a failing
//!   probe serialises to a self-contained `replay.json` ([`ReplayCase`])
//!   that `an2-repro replay <file>` re-executes to the exact failing
//!   slot; [`replay::shrink`] greedily minimises slot count and active
//!   ports while preserving the failure.
//!
//! The runtime hooks these build on live with the code they check:
//! `an2_sched::check` (per-matching invariants), `VoqBuffers::
//! capacity_invariant_holds`, `SwitchReport::is_conserved`, and
//! `Network::verify_invariants`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod oracle;
pub mod replay;
pub mod runner;

pub use oracle::ReferencePim;
pub use replay::{shrink, ReplayCase};
pub use runner::{run_case, RunOutcome};
