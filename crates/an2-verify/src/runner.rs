//! The invariant-checked probe runner: drives a PIM scheduler against
//! per-flow VOQ buffers slot by slot, re-verifying every invariant after
//! every slot.
//!
//! Unlike `an2_sched::CheckedScheduler` — whose checks compile away in
//! plain release builds so it can wrap hot paths for free — this runner
//! checks **unconditionally**: it exists to be asked (`an2-repro --check`,
//! `an2-repro replay`), so a release binary without the
//! `check-invariants` feature still gets real verification.
//!
//! Checked per slot:
//! * the matching is a legal partial permutation of requested pairs
//!   (and maximal, when the case demands it);
//! * every matched pair yields a queued cell;
//! * VOQ occupancy never exceeds the configured capacity;
//! * cells are conserved: admitted = delivered + queued, with corrupted
//!   and rejected cells accounted separately.

use crate::replay::ReplayCase;
use an2_sched::check::{matching_violations, Expectation, Violation};
use an2_sched::pim::IterationLimit;
use an2_sched::{InputPort, OutputPort, Pim, Scheduler};
use an2_sim::cell::Arrival;
use an2_sim::voq::VoqBuffers;
use an2_sched::rng::{SelectRng, Xoshiro256};

/// Result of executing a [`ReplayCase`].
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The first violation, if the probe failed.
    pub violation: Option<Violation>,
    /// Slots actually executed (stops at the failing slot).
    pub slots_run: u64,
    /// Invariant evaluations performed (one bundle per slot).
    pub checks: u64,
    /// Cells that crossed the crossbar.
    pub delivered: u64,
    /// Cells lost before admission (corruption faults + drop-tail).
    pub dropped: u64,
}

/// Executes `case` deterministically, stopping at the first violation.
///
/// Traffic: each of the first `active_ports` inputs draws one Bernoulli
/// (`load`) arrival per slot, destined to a uniform output among the
/// first `active_ports`, on a per-input stream split from the root seed
/// (key `0x7_0000 + i`, disjoint from the scheduler's grant/accept
/// streams). Flows are per-pair, so the per-flow FIFO discipline holds
/// by construction. The same case therefore always replays to the same
/// failing slot, on any machine.
pub fn run_case(case: &ReplayCase) -> RunOutcome {
    let n = case.n;
    let m = case.active_ports.clamp(1, n);
    let limit = if case.iterations == 0 {
        IterationLimit::ToCompletion
    } else {
        IterationLimit::Fixed(case.iterations)
    };
    let mut pim = Pim::with_options(n, case.seed, limit, case.accept_policy());
    if case.accept_skew != 0 {
        pim.debug_set_accept_skew(case.accept_skew);
    }
    let mut voq = VoqBuffers::new(n);
    voq.set_pair_capacity(case.pair_capacity);
    let expect = if case.expect_maximal {
        Expectation::Maximal
    } else {
        Expectation::Legal
    };

    let root = Xoshiro256::seed_from(case.seed);
    let mut traffic: Vec<Xoshiro256> = (0..m)
        .map(|i| root.split(0x7_0000 + i as u64))
        .collect();

    let mut admitted: u64 = 0;
    let mut delivered: u64 = 0;
    let mut dropped: u64 = 0;
    let mut checks: u64 = 0;
    let mut violations: Vec<Violation> = Vec::new();

    for slot in 0..case.slots {
        // 1. Arrivals (with the case's scripted corruption faults).
        for (i, rng) in traffic.iter_mut().enumerate() {
            if !rng.bernoulli(case.load) {
                continue;
            }
            let j = rng.index(m);
            if case.is_corrupted(slot, i) {
                dropped += 1;
                continue;
            }
            let arrival = Arrival::pair(n, InputPort::new(i), OutputPort::new(j));
            if voq.push(arrival.into_cell(slot)).is_admitted() {
                admitted += 1;
            } else {
                dropped += 1;
            }
        }

        // 2. Schedule, then verify the matching before touching queues —
        //    a broken matching must be reported, not acted on.
        let matching = pim.schedule(voq.requests());
        checks += 1;
        matching_violations(slot, voq.requests(), &matching, expect, None, &mut violations);

        // 3. Matched pairs transmit.
        if violations.is_empty() {
            for (i, j) in matching.pairs() {
                if voq.pop(i, j).is_some() {
                    delivered += 1;
                } else {
                    violations.push(Violation {
                        slot,
                        rule: "conservation",
                        detail: format!(
                            "matched pair ({}, {}) had no queued cell",
                            i.index(),
                            j.index()
                        ),
                    });
                }
            }
        }

        // 4. Buffer and ledger invariants.
        if violations.is_empty() && !voq.capacity_invariant_holds() {
            violations.push(Violation {
                slot,
                rule: "capacity",
                detail: "a VOQ exceeded its configured pair capacity".to_owned(),
            });
        }
        if violations.is_empty() && admitted != delivered + voq.len() as u64 {
            violations.push(Violation {
                slot,
                rule: "conservation",
                detail: format!(
                    "admitted {admitted} != delivered {delivered} + queued {}",
                    voq.len()
                ),
            });
        }

        if let Some(first) = violations.into_iter().next() {
            return RunOutcome {
                violation: Some(first),
                slots_run: slot + 1,
                checks,
                delivered,
                dropped,
            };
        }
        violations = Vec::new();
    }

    RunOutcome {
        violation: None,
        slots_run: case.slots,
        checks,
        delivered,
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_probe_passes_and_conserves() {
        let case = ReplayCase::new(8, 0xBEEF, 0.7, 256);
        let out = run_case(&case);
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert_eq!(out.slots_run, 256);
        assert_eq!(out.checks, 256);
        assert_eq!(out.dropped, 0);
        assert!(out.delivered > 0);
    }

    #[test]
    fn faulted_capacity_probe_still_passes() {
        let mut case = ReplayCase::new(8, 0xBEEF, 1.0, 256);
        case.pair_capacity = Some(4);
        case.corrupt = (0..16).map(|s| (s, (s % 8) as usize)).collect();
        let out = run_case(&case);
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.dropped >= 16, "corrupted cells count as dropped");
    }

    #[test]
    fn to_completion_probe_passes_maximality() {
        let mut case = ReplayCase::new(8, 0x5EED, 0.5, 128);
        case.iterations = 0; // to completion
        case.expect_maximal = true;
        let out = run_case(&case);
        assert!(out.violation.is_none(), "{:?}", out.violation);
    }

    #[test]
    fn seeded_skew_bug_fails_fast() {
        let mut case = ReplayCase::new(8, 0x0DD, 0.3, 512);
        case.accept_skew = 1;
        let out = run_case(&case);
        let v = out.violation.expect("skewed accept must be caught");
        assert_eq!(v.rule, "respects");
        assert_eq!(out.slots_run, v.slot + 1);
    }
}
