//! Property-based tests for the network substrate.

use an2_net::cbr::{simulate_cbr_chain, CbrChainConfig};
use an2_net::clock::ClockPolicy;
use an2_net::netsim::Network;
use an2_sched::{InputPort, OutputPort};
use an2_sim::cell::FlowId;
use proptest::prelude::*;

fn any_policy(which: u8, a: u64, b: u64) -> ClockPolicy {
    match which % 3 {
        0 => ClockPolicy::Constant((a % 101) as f64 / 100.0),
        1 => ClockPolicy::Random,
        _ => ClockPolicy::SlowThenFast {
            slow_frames: 1 + a % 50,
            fast_frames: 1 + b % 50,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Appendix B bounds hold for arbitrary valid configurations and
    /// clock adversaries.
    #[test]
    fn cbr_bounds_hold_for_random_configs(
        hops in 1usize..6,
        k in 1usize..4,
        frame_slots in 20usize..200,
        tol_bp in 1u32..300,         // tolerance in basis points (0.01%..3%)
        latency in 0.0f64..20.0,
        ctrl_which in any::<u8>(),
        sw_which in any::<u8>(),
        a in any::<u64>(),
        b in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mut cfg = CbrChainConfig {
            hops,
            cells_per_frame: k.min(frame_slots),
            switch_frame_slots: frame_slots,
            controller_stuffing: 0,
            slot_time: 1.0,
            tolerance: tol_bp as f64 / 10_000.0,
            link_latency: latency,
            frames: 150,
        };
        cfg.controller_stuffing = cfg.min_stuffing();
        let report = simulate_cbr_chain(
            &cfg,
            any_policy(ctrl_which, a, b),
            any_policy(sw_which, b, a),
            seed,
        )
        .expect("generated config is valid");
        prop_assert!(report.within_bounds(), "{report}");
        prop_assert_eq!(report.cells_delivered, 150 * cfg.cells_per_frame as u64);
    }

    /// In any linear chain, total deliveries never exceed bottleneck
    /// capacity and all flows make progress (no starvation under PIM).
    #[test]
    fn chain_flows_all_progress(
        seed in any::<u64>(),
        chain_len in 1usize..4,
        latency in 1u64..4,
    ) {
        let mut net = Network::new(seed);
        // chain_len switches; each has a local source at input 1; chain
        // runs through input 0 / output 0.
        let switches: Vec<_> = (0..chain_len).map(|_| net.add_switch(2)).collect();
        for w in switches.windows(2) {
            net.connect(w[0], OutputPort::new(0), w[1], InputPort::new(0), latency)
                .unwrap();
        }
        let mut flows = Vec::new();
        for (idx, &sw) in switches.iter().enumerate() {
            let f = FlowId(idx as u64 + 1);
            // Route through every switch from its entry onward.
            for &later in &switches[idx..] {
                net.add_route(later, f, OutputPort::new(0)).unwrap();
            }
            net.add_source(sw, InputPort::new(1), vec![f], 1.0).unwrap();
            flows.push(f);
        }
        let slots = 3_000u64;
        net.run(slots);
        let total: u64 = flows.iter().map(|&f| net.delivered(f)).sum();
        prop_assert!(total <= slots, "bottleneck overdelivered: {total} > {slots}");
        for &f in &flows {
            prop_assert!(net.delivered(f) > 0, "flow {f} starved");
        }
    }

    /// Uncontended paths deliver at full rate with latency equal to the
    /// sum of link latencies.
    #[test]
    fn uncontended_path_full_rate(
        seed in any::<u64>(),
        hops in 1usize..5,
        latency in 1u64..5,
    ) {
        let mut net = Network::new(seed);
        let switches: Vec<_> = (0..hops).map(|_| net.add_switch(2)).collect();
        for w in switches.windows(2) {
            net.connect(w[0], OutputPort::new(1), w[1], InputPort::new(0), latency)
                .unwrap();
        }
        let f = FlowId(9);
        for &sw in &switches {
            net.add_route(sw, f, OutputPort::new(1)).unwrap();
        }
        net.add_source(switches[0], InputPort::new(0), vec![f], 1.0)
            .unwrap();
        let slots = 500u64;
        net.run(slots);
        let expected_latency = (hops as u64 - 1) * latency;
        prop_assert!(net.delivered(f) >= slots - expected_latency - 2);
        if let Some(lat) = net.mean_latency(f) {
            prop_assert!(
                (lat - expected_latency as f64).abs() < 0.5,
                "latency {lat} vs expected {expected_latency}"
            );
        }
    }
}
