//! Fairness experiments — §5.1, Figures 8 and 9.
//!
//! Parallel iterative matching keeps links busy but shares them unevenly:
//!
//! * **Figure 8 (single switch):** a connection whose input and output both
//!   face contention loses twice. With input 4 requesting all four outputs
//!   and inputs 1–3 requesting only output 1, the connection 4→1 wins a
//!   slot only when output 1 grants it (probability 1/4) *and* input 4
//!   accepts that grant among its four (probability 1/4) — one sixteenth
//!   of the link, while input 4's other connections get 5/16 each.
//! * **Figure 9 (network):** flows merging closer to a bottleneck receive
//!   geometrically more bandwidth: with per-switch 50/50 input sharing, a
//!   chain of three switches gives flows a, b, c, d shares of about 1/2,
//!   1/4, 1/8, 1/8 where fairness demands 1/4 each.

use crate::netsim::{Network, SwitchId};
use an2_sched::{InputPort, OutputPort, Pim, RequestMatrix, Scheduler};
use an2_sim::cell::FlowId;
use an2_sim::metrics::jain_index;
use an2_sim::voq::ServiceDiscipline;

/// Per-connection throughput of a saturated 4×4 switch under the Figure 8
/// request pattern, measured over `slots` scheduling decisions.
///
/// Returns `(rate_4_to_1, other_rates)` where `rate_4_to_1` is the
/// throughput of the paper's starved connection (input 4 → output 1,
/// 0-based (3, 0)) and `other_rates` are input 4's three other connections,
/// in output order.
///
/// The paper's 1/16-vs-5/16 arithmetic assumes a single PIM iteration;
/// pass the scheduler configured accordingly for the exact numbers, or
/// with 4 iterations to see how gap-filling changes (but does not fix)
/// the imbalance.
pub fn figure_8_connection_rates(pim: &mut Pim, slots: u64) -> (f64, [f64; 3]) {
    assert_eq!(pim.n(), 4, "the Figure 8 pattern is defined on a 4x4 switch");
    // Input 3 (paper's input 4) has cells for every output; inputs 0-2
    // (paper's 1-3) have cells only for output 0 (paper's output 1).
    let requests = RequestMatrix::from_pairs(
        4,
        [
            (0, 0),
            (1, 0),
            (2, 0),
            (3, 0),
            (3, 1),
            (3, 2),
            (3, 3),
        ],
    );
    let mut wins = [0u64; 4];
    for _ in 0..slots {
        let m = pim.schedule(&requests);
        if let Some(j) = m.output_of(InputPort::new(3)) {
            wins[j.index()] += 1;
        }
    }
    let rate = |w: u64| w as f64 / slots as f64;
    (
        rate(wins[0]),
        [rate(wins[1]), rate(wins[2]), rate(wins[3])],
    )
}

/// The flows of the Figure 9 chain, in merge order: `a` joins at the last
/// switch (closest to the bottleneck), `d` at the first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainFlows {
    /// Flow entering at the last switch (gets ~1/2).
    pub a: FlowId,
    /// Flow entering at the middle switch (gets ~1/4).
    pub b: FlowId,
    /// Flow entering at the first switch (gets ~1/8).
    pub c: FlowId,
    /// Second flow entering at the first switch (gets ~1/8).
    pub d: FlowId,
}

/// Builds the Figure 9 topology: three 2×2 switches in a chain, all links
/// and sources saturated, four flows merging toward the final output.
///
/// ```text
/// d --> [s1] --> [s2] --> [s3] --> bottleneck sink
/// c -->  ^        ^
///        b -------'        a ------^
/// ```
///
/// Returns the network and the flow handles. Switch 1 is 2×2 fed by `c`
/// and `d`; its output merges with `b` at switch 2; switch 2's output
/// merges with `a` at switch 3.
pub fn build_figure_9_chain(seed: u64) -> (Network, ChainFlows, SwitchId) {
    build_figure_9_chain_with(seed, ServiceDiscipline::Fifo)
}

/// [`build_figure_9_chain`] with an explicit flow-service discipline.
///
/// The paper's illustration assumes merged streams are served in arrival
/// order ([`ServiceDiscipline::Fifo`]), yielding shares 1/2, 1/4, 1/8,
/// 1/8. The AN2 switch's per-flow round-robin
/// ([`ServiceDiscipline::RoundRobin`]) changes the split to about 1/2,
/// 1/6, 1/6, 1/6 — differently shaped, but no fairer.
pub fn build_figure_9_chain_with(
    seed: u64,
    discipline: ServiceDiscipline,
) -> (Network, ChainFlows, SwitchId) {
    let flows = ChainFlows {
        a: FlowId(0xA),
        b: FlowId(0xB),
        c: FlowId(0xC),
        d: FlowId(0xD),
    };
    let mut net = Network::new(seed);
    let sw = |net: &mut Network, k: u64| {
        net.add_switch_with(
            2,
            Box::new(Pim::new(2, seed ^ (k + 1).wrapping_mul(0x9E37_79B9))),
            discipline,
        )
    };
    let s1 = sw(&mut net, 1);
    let s2 = sw(&mut net, 2);
    let s3 = sw(&mut net, 3);
    // s1 output 0 -> s2 input 0; s2 output 0 -> s3 input 0.
    net.connect(s1, OutputPort::new(0), s2, InputPort::new(0), 1)
        .expect("chain link");
    net.connect(s2, OutputPort::new(0), s3, InputPort::new(0), 1)
        .expect("chain link");
    // All flows leave every switch they traverse via output 0 (the chain);
    // s3's output 0 is the bottleneck sink.
    for f in [flows.c, flows.d] {
        net.add_route(s1, f, OutputPort::new(0)).expect("chain route");
    }
    for f in [flows.b, flows.c, flows.d] {
        net.add_route(s2, f, OutputPort::new(0)).expect("chain route");
    }
    for f in [flows.a, flows.b, flows.c, flows.d] {
        net.add_route(s3, f, OutputPort::new(0)).expect("chain route");
    }
    // Saturated sources: c and d at s1; b at s2 input 1; a at s3 input 1.
    net.add_source(s1, InputPort::new(0), vec![flows.c], 1.0)
        .expect("chain source");
    net.add_source(s1, InputPort::new(1), vec![flows.d], 1.0)
        .expect("chain source");
    net.add_source(s2, InputPort::new(1), vec![flows.b], 1.0)
        .expect("chain source");
    net.add_source(s3, InputPort::new(1), vec![flows.a], 1.0)
        .expect("chain source");
    (net, flows, s3)
}

/// Result of the Figure 9 experiment.
#[derive(Clone, Debug)]
pub struct ChainShares {
    /// Bottleneck share of each flow (a, b, c, d), summing to ~1.
    pub shares: [f64; 4],
    /// Jain fairness index of the shares (1.0 would be fair; the chain
    /// topology yields ≈0.73).
    pub jain: f64,
}

/// Runs the Figure 9 chain (FIFO merge discipline, as in the paper's
/// illustration) for `warmup + measure` slots and returns each flow's
/// share of the bottleneck link.
pub fn figure_9_shares(seed: u64, warmup: u64, measure: u64) -> ChainShares {
    figure_9_shares_with(seed, warmup, measure, ServiceDiscipline::Fifo)
}

/// [`figure_9_shares`] with an explicit flow-service discipline.
pub fn figure_9_shares_with(
    seed: u64,
    warmup: u64,
    measure: u64,
    discipline: ServiceDiscipline,
) -> ChainShares {
    let (mut net, flows, _) = build_figure_9_chain_with(seed, discipline);
    net.run(warmup);
    net.reset_counters();
    net.run(measure);
    let total: u64 = [flows.a, flows.b, flows.c, flows.d]
        .iter()
        .map(|&f| net.delivered(f))
        .sum();
    let share = |f: FlowId| net.delivered(f) as f64 / total.max(1) as f64;
    let shares = [
        share(flows.a),
        share(flows.b),
        share(flows.c),
        share(flows.d),
    ];
    ChainShares {
        shares,
        jain: jain_index(&shares),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use an2_sched::{AcceptPolicy, IterationLimit};

    #[test]
    fn figure_8_single_iteration_matches_paper_arithmetic() {
        // P{4->1} = 1/4 * 1/4 = 1/16; P{4->j} = 5/16 for the others.
        let mut pim = Pim::with_options(
            4,
            11,
            IterationLimit::Fixed(1),
            AcceptPolicy::Random,
        );
        let (starved, others) = figure_8_connection_rates(&mut pim, 400_000);
        assert!(
            (starved - 1.0 / 16.0).abs() < 0.01,
            "4->1 rate {starved}, expected 1/16"
        );
        for r in others {
            assert!((r - 5.0 / 16.0).abs() < 0.01, "other rate {r}, expected 5/16");
        }
    }

    #[test]
    fn figure_8_unfairness_persists_with_four_iterations() {
        // Extra iterations fill unused slots but the starved connection
        // stays far below its fair share (input 4 carries 4 connections;
        // "fair" per §5.1 would give 4->1 a quarter of output 1's link...
        // even 1/8 remains out of reach).
        let mut pim = Pim::new(4, 13);
        let (starved, others) = figure_8_connection_rates(&mut pim, 400_000);
        assert!(starved < 0.125, "4->1 rate {starved}");
        for r in others {
            assert!(r > 2.0 * starved, "others should dwarf 4->1: {r} vs {starved}");
        }
    }

    #[test]
    fn figure_9_shares_are_geometric() {
        let s = figure_9_shares(3, 5_000, 40_000);
        let [a, b, c, d] = s.shares;
        assert!((a - 0.5).abs() < 0.04, "a share {a}");
        assert!((b - 0.25).abs() < 0.04, "b share {b}");
        assert!((c - 0.125).abs() < 0.04, "c share {c}");
        assert!((d - 0.125).abs() < 0.04, "d share {d}");
        // Unfair by Jain's measure: fair would be 1.0.
        assert!(s.jain < 0.85, "jain {}", s.jain);
        // The bottleneck itself stays fully utilized.
        let total: f64 = s.shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn figure_9_round_robin_variant_is_still_unfair() {
        // AN2's per-flow round-robin merges b, c, d evenly at the last
        // switch: shares ~ 1/2, 1/6, 1/6, 1/6.
        let s = figure_9_shares_with(4, 5_000, 40_000, ServiceDiscipline::RoundRobin);
        let [a, b, c, d] = s.shares;
        assert!((a - 0.5).abs() < 0.04, "a share {a}");
        for (name, v) in [("b", b), ("c", c), ("d", d)] {
            assert!((v - 1.0 / 6.0).abs() < 0.04, "{name} share {v}");
        }
        assert!(s.jain < 0.85, "jain {}", s.jain);
    }

    #[test]
    fn chain_builder_wires_a_working_network() {
        let (mut net, flows, _) = build_figure_9_chain(9);
        net.run(1000);
        for f in [flows.a, flows.b, flows.c, flows.d] {
            assert!(net.delivered(f) > 0, "{f} starved outright");
        }
    }
}
