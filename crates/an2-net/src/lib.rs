//! Multi-switch network simulation for the AN2 reproduction.
//!
//! The paper evaluates more than a single switch: §4/Appendix B bound CBR
//! latency and buffering across a *path* of switches with unsynchronized
//! clocks, and §5.1/Figure 9 shows fairness degrading across a *chain* of
//! switches. This crate provides those substrates:
//!
//! * [`netsim`] — a slot-synchronous arbitrary-topology network of
//!   input-queued switches (PIM-scheduled by default), links with latency,
//!   per-flow static routes, saturating or rate-limited sources.
//! * [`clock`] — drifting frame clocks, including the Appendix B
//!   slow-then-fast adversary.
//! * [`cbr`] — the frame-based CBR chain simulation that checks the
//!   Appendix B latency bound (Formula 3) and buffer bound (Formula 5).
//! * [`fairness`] — the Figure 8 and Figure 9 unfairness experiments.
//!
//! # Quick start
//!
//! ```
//! use an2_net::fairness::figure_9_shares;
//! let s = figure_9_shares(1, 2_000, 10_000);
//! // The flow merging at the last switch gets about half the bottleneck.
//! assert!(s.shares[0] > 0.4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod cbr;
pub mod clock;
pub mod fairness;
pub mod meter;
pub mod netsim;
pub mod shard;

pub use cbr::{simulate_cbr_chain, CbrChainConfig, CbrChainReport, CbrConfigError};
pub use clock::{ClockPolicy, FrameClock};
pub use netsim::{Network, ReserveFlowError, SwitchId, TopologyError};
pub use shard::{
    run_shard_net, run_shard_net_faulted, ShardFaultReport, ShardNetConfig, ShardReport,
    FAULT_WINDOW,
};
