//! Sharded thousand-switch network stepper.
//!
//! [`Network`](crate::netsim::Network) is a single-threaded, fully general
//! simulator (arbitrary topologies, faults, rerouting); stepping a
//! 1000-switch network through 10k slots with it is a minutes-scale job.
//! This module is the scale-out companion: a fixed **ring** of identical
//! crossbar switches whose per-slot work is sharded across an
//! [`an2_task::Pool`] with a deterministic serial merge, so the same run
//! is bit-identical at any thread count.
//!
//! Determinism argument: every switch's state — its traffic generator,
//! its PIM scheduler streams, its VOQ contents — is a function of its own
//! seed (`task_seed(root, "sw{k}")`) and of the cells its ring
//! predecessor hands it. A slot advances in two phases:
//!
//! 1. **Phase A (parallel)**: each switch consumes its inbox, injects
//!    host traffic from its private RNG, schedules its crossbar and fills
//!    its outbox. Switches touch only their own state, so how the pool
//!    chunks them across workers cannot affect any value.
//! 2. **Phase B (serial merge)**: outboxes are moved to successor
//!    inboxes in switch-index order (one-slot link latency).
//!
//! The end-of-run [`ShardReport`] aggregates per-switch counters in index
//! order and carries an FNV digest over them, so `--threads 1` and
//! `--threads 8` runs can be byte-compared.

use an2_sched::rng::{SelectRng, Xoshiro256};
use an2_sched::{Pim, PortMask, PortSet, RequestMatrix, Scheduler};
use an2_sim::fault::{FaultEvent, FaultKind, FaultPlan, PortSide};
use an2_sim::metrics::QuantileSketch;
use an2_task::{task_seed, Pool};
use std::fmt;

/// Number of switch chunks handed to the pool per slot. Fixed (not the
/// worker count) so the chunk boundaries are part of the scenario, not of
/// the machine; correctness does not depend on it because switches are
/// independent within a phase.
const CHUNKS: usize = 64;

/// Longest gap between ring-link re-reservation probes (slots). Backoff
/// doubles from 1 up to this bound, so a switch whose outgoing link died
/// probes the link within `MAX_BACKOFF` slots of it physically returning.
const MAX_BACKOFF: u64 = 64;

/// Slots per throughput-recovery window in faulted runs: delivered-cell
/// counts are bucketed at this granularity so the chaos driver can find
/// the slot where post-fault throughput regains its pre-fault baseline.
pub const FAULT_WINDOW: u64 = 32;

/// A growable FIFO of packed transit cells with power-of-two capacity;
/// the per-pair VOQ storage of a shard switch. Same shape as the batch
/// engine's slot ring, but carrying `u64` payloads (routed cells), not
/// bare arrival slots.
#[derive(Debug, Default)]
struct Ring {
    buf: Box<[u64]>,
    head: u32,
    len: u32,
}

impl Ring {
    #[inline]
    // an2-lint: allow(overflow-discipline) grow() runs first, so len < capacity before the increment
    // an2-lint: allow(panic-freedom) tail is masked by the power-of-two ring capacity
    fn enqueue(&mut self, v: u64) {
        if self.len as usize == self.buf.len() {
            self.grow();
        }
        let mask = self.buf.len() - 1;
        let tail = (self.head as usize + self.len as usize) & mask;
        self.buf[tail] = v;
        self.len += 1;
    }

    #[inline]
    // an2-lint: allow(overflow-discipline) callers only dequeue VOQs the request matrix marks non-empty (the debug_assert pins len > 0)
    // an2-lint: allow(panic-freedom) head is masked by the power-of-two ring capacity
    fn dequeue(&mut self) -> u64 {
        debug_assert!(self.len > 0, "dequeue from empty ring");
        let mask = self.buf.len() - 1;
        let v = self.buf[self.head as usize];
        self.head = ((self.head as usize + 1) & mask) as u32;
        self.len -= 1;
        v
    }

    /// Doubles capacity, compacting the live window to the front.
    // an2-lint: cold
    #[cold]
    fn grow(&mut self) {
        let cap = self.buf.len();
        let mut next = vec![0u64; (cap * 2).max(4)].into_boxed_slice();
        let mask = cap.max(1) - 1;
        for k in 0..self.len as usize {
            next[k] = self.buf[(self.head as usize + k) & mask];
        }
        self.buf = next;
        self.head = 0;
    }
}

/// Scenario parameters for a sharded ring-network run.
#[derive(Clone, Copy, Debug)]
pub struct ShardNetConfig {
    /// Switches on the ring.
    pub switches: usize,
    /// Ports per switch; port 0 is the ring link, ports `1..radix` face
    /// hosts.
    pub radix: usize,
    /// Destination span: each injected cell targets a switch uniformly
    /// `1..=span` hops ahead on the ring.
    pub span: usize,
    /// Per-host-port Bernoulli injection probability per slot. Keep
    /// `host_load * (radix-1) * (span+1) / 2` under 1.0 or the shared
    /// ring link saturates and queues diverge.
    pub host_load: f64,
    /// Root seed; switch `k` derives its streams via
    /// `task_seed(seed, "sw{k}")`.
    pub seed: u64,
    /// Slots to simulate.
    pub slots: u64,
}

impl ShardNetConfig {
    /// The thousand-switch scaling scenario the benchmarks record.
    pub fn thousand() -> Self {
        Self {
            switches: 1000,
            radix: 16,
            span: 4,
            host_load: 0.015,
            seed: 0xA2,
            slots: 10_000,
        }
    }

    fn validate(&self) {
        assert!(self.switches >= 2, "a ring needs at least two switches");
        assert!(
            self.radix >= 2 && self.radix <= 256,
            "shard switches use the narrow scheduler width (radix 2..=256)"
        );
        assert!(self.span >= 1 && self.span < self.switches, "span out of range");
        assert!(
            (0.0..=1.0).contains(&self.host_load),
            "host_load must be a probability"
        );
        assert!(self.slots < u32::MAX as u64, "slot counter is packed in 32 bits");
    }
}

/// Packed transit cell: destination switch (20 bits), destination host
/// port (12 bits), injection slot (32 bits).
#[inline]
fn pack(dst_switch: usize, dst_port: usize, slot: u64) -> u64 {
    ((dst_switch as u64) << 44) | ((dst_port as u64) << 32) | slot
}

#[inline]
fn dst_switch(cell: u64) -> usize {
    (cell >> 44) as usize
}

#[inline]
fn dst_port(cell: u64) -> usize {
    ((cell >> 32) & 0xFFF) as usize
}

#[inline]
fn inject_slot(cell: u64) -> u64 {
    cell & 0xFFFF_FFFF
}

/// One ring switch: private RNG, PIM scheduler, per-pair VOQ rings, and
/// the single-cell link buffers the merge phase moves.
#[derive(Debug)]
struct SwitchShard {
    k: usize,
    switches: usize,
    radix: usize,
    span: usize,
    host_load: f64,
    rng: Xoshiro256,
    sched: Pim,
    requests: RequestMatrix,
    rings: Vec<Ring>,
    inbox: Option<u64>,
    outbox: Option<u64>,
    queued: u64,
    injected: u64,
    delivered: u64,
    delay_sum: u128,
    sketch: QuantileSketch,
    // --- fault state (inert in fault-free runs) ---------------------
    /// This switch's slice of the campaign's fault plan.
    plan: FaultPlan,
    /// Port health; failed ports are masked out of scheduling only.
    mask: PortMask,
    /// Scheduling is suspended while `slot < drift_until` (clock drift).
    drift_until: u64,
    /// Physical state of the outgoing ring link (LinkDown/LinkUp events).
    link_up: bool,
    /// A re-reservation backoff loop is running for the ring link.
    reserving: bool,
    /// Slot of the next re-reservation probe.
    retry_at: u64,
    /// Current probe gap; doubles per failure up to [`MAX_BACKOFF`].
    backoff: u64,
    /// Slot the current ring-link outage began (for recovery SLOs).
    down_since: u64,
    /// Cells lost at this switch (injected drops, corrupted CRCs, cells
    /// in flight on a dying link).
    dropped: u64,
    /// Fault events applied here.
    applied: u64,
    /// Ring-link re-reservation probes sent / probes that failed.
    res_attempts: u64,
    res_failures: u64,
    /// Completed ring-link recoveries, and their summed outage-to-
    /// reservation latency in slots.
    recoveries: u64,
    recovery_slots: u64,
    /// Delivered-cell counts per [`FAULT_WINDOW`]-slot bucket; empty in
    /// fault-free runs (the faulted runner pre-sizes it).
    windows: Vec<u32>,
}

impl SwitchShard {
    fn new(cfg: &ShardNetConfig, k: usize) -> Self {
        let seed = task_seed(cfg.seed, &format!("sw{k}"));
        let mut rings = Vec::new();
        rings.resize_with(cfg.radix * cfg.radix, Ring::default);
        Self {
            k,
            switches: cfg.switches,
            radix: cfg.radix,
            span: cfg.span,
            host_load: cfg.host_load,
            rng: Xoshiro256::seed_from(seed),
            sched: Pim::new(cfg.radix, seed),
            requests: RequestMatrix::new(cfg.radix),
            rings,
            inbox: None,
            outbox: None,
            queued: 0,
            injected: 0,
            delivered: 0,
            delay_sum: 0,
            sketch: QuantileSketch::new(),
            plan: FaultPlan::new(),
            mask: PortMask::all(cfg.radix),
            drift_until: 0,
            link_up: true,
            reserving: false,
            retry_at: 0,
            backoff: 1,
            down_since: 0,
            dropped: 0,
            applied: 0,
            res_attempts: 0,
            res_failures: 0,
            recoveries: 0,
            recovery_slots: 0,
            windows: Vec::new(),
        }
    }

    #[inline]
    // an2-lint: allow(overflow-discipline) queued counts resident cells, bounded by total ring capacity
    // an2-lint: allow(panic-freedom) p = input * radix + output with both factors < radix, so p < rings.len()
    fn enqueue_cell(&mut self, input: usize, cell: u64) {
        let output = if dst_switch(cell) == self.k {
            dst_port(cell)
        } else {
            0
        };
        let p = input * self.radix + output;
        if self.rings[p].len == 0 {
            self.requests.set(
                an2_sched::InputPort::new(input),
                an2_sched::OutputPort::new(output),
            );
        }
        self.rings[p].enqueue(cell);
        self.queued += 1;
    }

    /// Phase A for one slot: consume the inbox, inject host traffic,
    /// schedule the crossbar, deliver local cells and fill the outbox.
    // an2-lint: hot
    fn step(&mut self, slot: u64) {
        let none = PortSet::new();
        self.advance(slot, &none, &none, false);
    }

    /// Phase A under this switch's fault plan: applies due events (mask
    /// changes, on-the-wire cell losses, clock drift), runs the bounded-
    /// backoff re-reservation probe for a failed ring link, then the
    /// ordinary inject/schedule/transmit sequence. With an empty plan the
    /// slot is bit-identical to [`SwitchShard::step`] — the RNG draw order
    /// never depends on fault state.
    // an2-lint: hot
    // an2-lint: allow(overflow-discipline) monotone u64 fault counters; slot >= down_since and backoff is clamped to MAX_BACKOFF, so the slot arithmetic cannot wrap
    fn step_faulted(&mut self, slot: u64) {
        let mut injected = PortSet::new();
        let mut corrupted = PortSet::new();
        let mut mask_changed = false;
        // Move the plan out so event handling can borrow `self` freely.
        let mut plan = std::mem::take(&mut self.plan);
        for ev in plan.due(slot) {
            match ev.kind {
                FaultKind::LinkDown { output, .. } => {
                    if output == 0 {
                        // The outgoing ring link died: lose anything on
                        // the wire and start the re-reservation loop.
                        self.link_up = false;
                        if self.outbox.take().is_some() {
                            self.dropped += 1;
                        }
                        if !self.reserving {
                            self.reserving = true;
                            self.down_since = slot;
                            self.backoff = 1;
                            self.retry_at = slot + 1;
                        }
                    }
                    mask_changed |= self.mask.fail_output(output);
                }
                FaultKind::LinkUp { output, .. } => {
                    if output == 0 {
                        // Physical repair only: the output stays masked
                        // until a re-reservation probe succeeds.
                        self.link_up = true;
                    } else {
                        mask_changed |= self.mask.recover_output(output);
                    }
                }
                FaultKind::PortFail { side, port, .. } => {
                    mask_changed |= match side {
                        PortSide::Input => self.mask.fail_input(port),
                        PortSide::Output => self.mask.fail_output(port),
                    };
                }
                FaultKind::PortRecover { side, port, .. } => {
                    mask_changed |= match side {
                        PortSide::Input => self.mask.recover_input(port),
                        PortSide::Output => self.mask.recover_output(port),
                    };
                }
                FaultKind::CellDrop { input, .. } => {
                    injected.insert(input);
                }
                FaultKind::CellCorrupt { input, .. } => {
                    corrupted.insert(input);
                }
                FaultKind::ClockDrift { slots, .. } => {
                    self.drift_until = self.drift_until.max(slot.saturating_add(slots));
                }
            }
            self.applied += 1;
        }
        self.plan = plan;
        // Bounded-backoff re-reservation: probe the dead ring link on the
        // backoff schedule; once it is physically up a probe re-reserves
        // the slot capacity and unmasks the output.
        if self.reserving && slot >= self.retry_at {
            self.res_attempts += 1;
            if self.link_up {
                self.reserving = false;
                mask_changed |= self.mask.recover_output(0);
                self.recoveries += 1;
                self.recovery_slots += slot - self.down_since;
            } else {
                self.res_failures += 1;
                self.backoff = (self.backoff * 2).min(MAX_BACKOFF);
                self.retry_at = slot + self.backoff;
            }
        }
        if mask_changed {
            self.sched.set_port_mask(self.mask);
        }
        let skip_schedule = slot < self.drift_until;
        self.advance(slot, &injected, &corrupted, skip_schedule);
    }

    /// The Phase A engine shared by [`SwitchShard::step`] (no faults) and
    /// [`SwitchShard::step_faulted`]. RNG draws happen for every host
    /// arrival whether or not a fault consumes it, so masking and drops
    /// are draw-neutral.
    // an2-lint: hot
    // an2-lint: allow(overflow-discipline) queued mirrors ring occupancy; slot >= inject_slot(cell) since cells are injected at or before the current slot; delivery counters are monotone u64
    // an2-lint: allow(panic-freedom) matched pairs come from the scheduler, so i and j are < radix and p < rings.len()
    fn advance(&mut self, slot: u64, injected: &PortSet, corrupted: &PortSet, skip_schedule: bool) {
        if let Some(cell) = self.inbox.take() {
            if injected.contains(0) || corrupted.contains(0) {
                // The cell in flight on the (dying or glitching) ring link
                // is lost at the receiver.
                self.dropped += 1;
            } else {
                self.enqueue_cell(0, cell);
            }
        }
        for h in 1..self.radix {
            if self.rng.bernoulli(self.host_load) {
                let d = (self.k + 1 + self.rng.index(self.span)) % self.switches;
                let q = 1 + self.rng.index(self.radix - 1);
                self.injected += 1;
                if injected.contains(h) || corrupted.contains(h) {
                    self.dropped += 1;
                } else {
                    self.enqueue_cell(h, pack(d, q, slot));
                }
            }
        }
        if skip_schedule {
            return;
        }
        let matching = self.sched.schedule(&self.requests);
        for (i, j) in matching.pairs() {
            let p = i.index() * self.radix + j.index();
            let cell = self.rings[p].dequeue();
            if self.rings[p].len == 0 {
                self.requests.clear(i, j);
            }
            self.queued -= 1;
            if j.index() == 0 {
                debug_assert!(self.outbox.is_none(), "two cells matched onto the ring link");
                self.outbox = Some(cell);
            } else {
                let d = slot - inject_slot(cell);
                self.delivered += 1;
                self.delay_sum += d as u128;
                self.sketch.record(d);
                if !self.windows.is_empty() {
                    self.windows[(slot / FAULT_WINDOW) as usize] += 1;
                }
            }
        }
    }

    /// Cells still inside this switch (VOQs plus undelivered link buffers).
    fn in_flight(&self) -> u64 {
        self.queued + self.inbox.is_some() as u64 + self.outbox.is_some() as u64
    }
}

/// Aggregate result of a sharded network run; identical at any thread
/// count for a given [`ShardNetConfig`].
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Slots simulated.
    pub slots: u64,
    /// Switches on the ring.
    pub switches: usize,
    /// Cells injected by hosts.
    pub injected: u64,
    /// Cells delivered to their destination host port.
    pub delivered: u64,
    /// Cells still queued or on a link at the end of the run.
    pub in_flight: u64,
    /// End-to-end delay distribution of delivered cells (injection slot to
    /// delivery slot), in the O(1)-memory sketch.
    pub delay: QuantileSketch,
    /// Exact mean end-to-end delay in slots.
    pub mean_delay: f64,
    /// FNV-1a digest over per-switch `(injected, delivered, in_flight)`
    /// triples in switch-index order — a thread-count-independence probe.
    pub digest: u64,
}

impl ShardReport {
    /// Every injected cell is delivered or still in flight.
    pub fn is_conserved(&self) -> bool {
        self.injected == self.delivered + self.in_flight
    }
}

impl fmt::Display for ShardReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "shard-net: {} switches x {} slots",
            self.switches, self.slots
        )?;
        writeln!(
            f,
            "  injected {}  delivered {}  in-flight {}",
            self.injected, self.delivered, self.in_flight
        )?;
        writeln!(
            f,
            "  delay mean {:.4}  p50 {}  p99 {}  max {}",
            self.mean_delay,
            self.delay.quantile(0.50),
            self.delay.quantile(0.99),
            self.delay.max()
        )?;
        write!(f, "  digest {:#018x}", self.digest)
    }
}

/// Runs the configured ring network on `pool` and returns the merged
/// report.
///
/// # Panics
///
/// Panics if the configuration is out of range (see [`ShardNetConfig`]
/// field docs) or if cell conservation is violated.
pub fn run_shard_net(cfg: &ShardNetConfig, pool: &Pool) -> ShardReport {
    cfg.validate();
    let k = cfg.switches;
    let mut chunks: Vec<Vec<SwitchShard>> = Vec::new();
    let chunk_len = k.div_ceil(CHUNKS.min(k));
    let mut next = 0usize;
    while next < k {
        let end = (next + chunk_len).min(k);
        chunks.push((next..end).map(|i| SwitchShard::new(cfg, i)).collect());
        next = end;
    }
    let locate = |i: usize| (i / chunk_len, i % chunk_len);

    for slot in 0..cfg.slots {
        // Phase A: independent per-switch work, sharded across the pool.
        chunks = pool.map(std::mem::take(&mut chunks), |_, mut chunk| {
            for sw in &mut chunk {
                sw.step(slot);
            }
            chunk
        });
        // Phase B: serial merge in switch-index order — ring links carry
        // one cell with one slot of latency.
        for i in 0..k {
            let (c, o) = locate(i);
            let Some(cell) = chunks[c][o].outbox.take() else {
                continue;
            };
            let (nc, no) = locate((i + 1) % k);
            debug_assert!(chunks[nc][no].inbox.is_none());
            chunks[nc][no].inbox = Some(cell);
        }
    }

    // Deterministic reduction in switch-index order.
    let mut injected = 0u64;
    let mut delivered = 0u64;
    let mut in_flight = 0u64;
    let mut delay_sum = 0u128;
    let mut delay = QuantileSketch::new();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let fold = |d: &mut u64, v: u64| {
        for b in v.to_le_bytes() {
            *d ^= b as u64;
            *d = d.wrapping_mul(0x1_0000_0000_01b3);
        }
    };
    for i in 0..k {
        let (c, o) = locate(i);
        let sw = &chunks[c][o];
        injected += sw.injected;
        delivered += sw.delivered;
        in_flight += sw.in_flight();
        delay_sum += sw.delay_sum;
        delay.merge(&sw.sketch);
        fold(&mut digest, sw.injected);
        fold(&mut digest, sw.delivered);
        fold(&mut digest, sw.in_flight());
    }
    let report = ShardReport {
        slots: cfg.slots,
        switches: k,
        injected,
        delivered,
        in_flight,
        mean_delay: if delivered == 0 {
            0.0
        } else {
            delay_sum as f64 / delivered as f64
        },
        delay,
        digest,
    };
    assert!(
        report.is_conserved(),
        "cell conservation violated: {} injected, {} delivered, {} in flight",
        report.injected,
        report.delivered,
        report.in_flight
    );
    report
}

/// Aggregate result of a faulted sharded run; identical at any thread
/// count for a given `(ShardNetConfig, FaultPlan)` pair.
#[derive(Clone, Debug)]
pub struct ShardFaultReport {
    /// Slots simulated.
    pub slots: u64,
    /// Switches on the ring.
    pub switches: usize,
    /// Cells injected by hosts.
    pub injected: u64,
    /// Cells delivered to their destination host port.
    pub delivered: u64,
    /// Cells still queued or on a link at the end of the run.
    pub in_flight: u64,
    /// Cells lost to faults (injected drops, corrupted CRCs, cells caught
    /// on a dying ring link).
    pub dropped: u64,
    /// Fault events applied across the network.
    pub faults_applied: u64,
    /// Ring-link re-reservation probes sent, and probes that found the
    /// link still down.
    pub res_attempts: u64,
    /// Failed re-reservation probes (link still physically down).
    pub res_failures: u64,
    /// Completed ring-link recoveries.
    pub recoveries: u64,
    /// Summed outage-begin-to-reservation latency over all recoveries.
    pub recovery_slots: u64,
    /// Exact mean end-to-end delay of delivered cells, in slots.
    pub mean_delay: f64,
    /// End-to-end delay distribution of delivered cells.
    pub delay: QuantileSketch,
    /// Network-wide delivered-cell counts per [`FAULT_WINDOW`]-slot
    /// bucket, for throughput-recovery SLOs.
    pub windows: Vec<u64>,
    /// FNV-1a digest over per-switch `(injected, delivered, in_flight,
    /// dropped)` quadruples in switch-index order.
    pub digest: u64,
}

impl ShardFaultReport {
    /// Every injected cell is delivered, still in flight, or accounted as
    /// a fault drop.
    pub fn is_conserved(&self) -> bool {
        self.injected == self.delivered + self.in_flight + self.dropped
    }

    /// Mean slots from ring-link outage to successful re-reservation.
    pub fn mean_recovery_slots(&self) -> f64 {
        if self.recoveries == 0 {
            0.0
        } else {
            self.recovery_slots as f64 / self.recoveries as f64
        }
    }
}

impl fmt::Display for ShardFaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "shard-net faulted: {} switches x {} slots",
            self.switches, self.slots
        )?;
        writeln!(
            f,
            "  injected {}  delivered {}  in-flight {}  dropped {}",
            self.injected, self.delivered, self.in_flight, self.dropped
        )?;
        writeln!(
            f,
            "  faults {}  probes {} ({} failed)  recoveries {}  mean-recovery {:.2}",
            self.faults_applied,
            self.res_attempts,
            self.res_failures,
            self.recoveries,
            self.mean_recovery_slots()
        )?;
        writeln!(
            f,
            "  delay mean {:.4}  p50 {}  p99 {}  max {}",
            self.mean_delay,
            self.delay.quantile(0.50),
            self.delay.quantile(0.99),
            self.delay.max()
        )?;
        write!(f, "  digest {:#018x}", self.digest)
    }
}

/// Splits a network-wide fault plan into per-switch plans.
///
/// A ring `LinkDown {..., output: 0}` is additionally mirrored as a
/// synthetic `CellDrop { switch: successor, input: 0 }` at the same slot:
/// the cell in flight on the dying link sits in the successor's inbox
/// under the one-slot link-latency model, and only the successor can
/// drop it without crossing shard boundaries during the parallel phase.
fn split_plan(plan: &FaultPlan, switches: usize) -> Vec<Vec<FaultEvent>> {
    let mut per_switch: Vec<Vec<FaultEvent>> = vec![Vec::new(); switches];
    for ev in plan.events() {
        let s = ev.kind.switch();
        debug_assert!(s < switches, "fault event targets switch {s} of {switches}");
        if s >= switches {
            continue;
        }
        per_switch[s].push(*ev);
        if let FaultKind::LinkDown { output: 0, .. } = ev.kind {
            let succ = (s + 1) % switches;
            per_switch[succ].push(FaultEvent {
                slot: ev.slot,
                kind: FaultKind::CellDrop {
                    switch: succ,
                    input: 0,
                },
            });
        }
    }
    per_switch
}

/// Runs the configured ring network under `plan` on `pool` and returns
/// the merged fault report. With an empty plan the per-switch dynamics
/// are bit-identical to [`run_shard_net`].
///
/// # Panics
///
/// Panics if the configuration is out of range or if cell conservation
/// (injected == delivered + in flight + dropped) is violated.
pub fn run_shard_net_faulted(
    cfg: &ShardNetConfig,
    plan: &FaultPlan,
    pool: &Pool,
) -> ShardFaultReport {
    cfg.validate();
    let k = cfg.switches;
    let mut plans = split_plan(plan, k);
    let buckets = cfg.slots.div_ceil(FAULT_WINDOW).max(1) as usize;
    let mut chunks: Vec<Vec<SwitchShard>> = Vec::new();
    let chunk_len = k.div_ceil(CHUNKS.min(k));
    let mut next = 0usize;
    while next < k {
        let end = (next + chunk_len).min(k);
        chunks.push(
            (next..end)
                .map(|i| {
                    let mut sw = SwitchShard::new(cfg, i);
                    sw.plan = FaultPlan::from_events(std::mem::take(&mut plans[i]));
                    sw.windows = vec![0u32; buckets];
                    sw
                })
                .collect(),
        );
        next = end;
    }
    let locate = |i: usize| (i / chunk_len, i % chunk_len);

    for slot in 0..cfg.slots {
        // Phase A: independent per-switch faulted work.
        chunks = pool.map(std::mem::take(&mut chunks), |_, mut chunk| {
            for sw in &mut chunk {
                sw.step_faulted(slot);
            }
            chunk
        });
        // Phase B: serial merge in switch-index order. A sender whose
        // ring link is physically down loses the cell (defensive: the
        // mask normally prevents the outbox from filling while down).
        for i in 0..k {
            let (c, o) = locate(i);
            let Some(cell) = chunks[c][o].outbox.take() else {
                continue;
            };
            if !chunks[c][o].link_up {
                chunks[c][o].dropped += 1;
                continue;
            }
            let (nc, no) = locate((i + 1) % k);
            debug_assert!(chunks[nc][no].inbox.is_none());
            chunks[nc][no].inbox = Some(cell);
        }
    }

    // Deterministic reduction in switch-index order.
    let mut injected = 0u64;
    let mut delivered = 0u64;
    let mut in_flight = 0u64;
    let mut dropped = 0u64;
    let mut faults_applied = 0u64;
    let mut res_attempts = 0u64;
    let mut res_failures = 0u64;
    let mut recoveries = 0u64;
    let mut recovery_slots = 0u64;
    let mut delay_sum = 0u128;
    let mut delay = QuantileSketch::new();
    let mut windows = vec![0u64; buckets];
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let fold = |d: &mut u64, v: u64| {
        for b in v.to_le_bytes() {
            *d ^= b as u64;
            *d = d.wrapping_mul(0x1_0000_0000_01b3);
        }
    };
    for i in 0..k {
        let (c, o) = locate(i);
        let sw = &chunks[c][o];
        injected += sw.injected;
        delivered += sw.delivered;
        in_flight += sw.in_flight();
        dropped += sw.dropped;
        faults_applied += sw.applied;
        res_attempts += sw.res_attempts;
        res_failures += sw.res_failures;
        recoveries += sw.recoveries;
        recovery_slots += sw.recovery_slots;
        delay_sum += sw.delay_sum;
        delay.merge(&sw.sketch);
        for (w, &v) in windows.iter_mut().zip(sw.windows.iter()) {
            *w += v as u64;
        }
        fold(&mut digest, sw.injected);
        fold(&mut digest, sw.delivered);
        fold(&mut digest, sw.in_flight());
        fold(&mut digest, sw.dropped);
    }
    let report = ShardFaultReport {
        slots: cfg.slots,
        switches: k,
        injected,
        delivered,
        in_flight,
        dropped,
        faults_applied,
        res_attempts,
        res_failures,
        recoveries,
        recovery_slots,
        mean_delay: if delivered == 0 {
            0.0
        } else {
            delay_sum as f64 / delivered as f64
        },
        delay,
        windows,
        digest,
    };
    assert!(
        report.is_conserved(),
        "cell conservation violated under faults: {} injected, {} delivered, {} in flight, {} dropped",
        report.injected,
        report.delivered,
        report.in_flight,
        report.dropped
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ShardNetConfig {
        ShardNetConfig {
            switches: 32,
            radix: 8,
            span: 3,
            host_load: 0.02,
            seed: 7,
            slots: 400,
        }
    }

    #[test]
    fn serial_run_conserves_and_delivers() {
        let r = run_shard_net(&small(), &Pool::serial());
        assert!(r.is_conserved());
        assert!(r.delivered > 0, "no cells delivered");
        assert!(r.delay.max() >= 2, "ring transit takes at least two slots");
    }

    #[test]
    fn thread_count_does_not_change_the_run() {
        let a = run_shard_net(&small(), &Pool::serial());
        let b = run_shard_net(&small(), &Pool::new(4));
        let c = run_shard_net(&small(), &Pool::new(3));
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.digest, c.digest);
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.to_string(), c.to_string());
    }

    #[test]
    fn distinct_seeds_produce_distinct_runs() {
        let mut cfg = small();
        let a = run_shard_net(&cfg, &Pool::serial());
        cfg.seed = 8;
        let b = run_shard_net(&cfg, &Pool::serial());
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn ring_latency_reflects_span() {
        // With span 1 every cell crosses exactly one link: scheduled out
        // in the injection slot at the earliest, delivered no sooner than
        // the next slot — delay is at least 1.
        let cfg = ShardNetConfig {
            switches: 8,
            radix: 4,
            span: 1,
            host_load: 0.01,
            seed: 3,
            slots: 500,
        };
        let r = run_shard_net(&cfg, &Pool::serial());
        assert!(r.delivered > 0);
        assert!(r.delay.quantile(0.5) >= 1);
    }

    #[test]
    #[should_panic(expected = "at least two switches")]
    fn single_switch_ring_rejected() {
        let mut cfg = small();
        cfg.switches = 1;
        run_shard_net(&cfg, &Pool::serial());
    }

    #[test]
    fn empty_plan_matches_the_fault_free_run() {
        let cfg = small();
        let base = run_shard_net(&cfg, &Pool::serial());
        let faulted = run_shard_net_faulted(&cfg, &FaultPlan::new(), &Pool::serial());
        assert_eq!(base.injected, faulted.injected);
        assert_eq!(base.delivered, faulted.delivered);
        assert_eq!(base.in_flight, faulted.in_flight);
        assert_eq!(faulted.dropped, 0);
        assert_eq!(faulted.faults_applied, 0);
        assert_eq!(base.mean_delay, faulted.mean_delay);
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(base.delay.quantile(q), faulted.delay.quantile(q));
        }
        assert_eq!(
            faulted.windows.iter().sum::<u64>(),
            faulted.delivered,
            "window buckets must sum to the delivered total"
        );
    }

    fn burst_plan() -> FaultPlan {
        FaultPlan::from_events(vec![
            FaultEvent {
                slot: 50,
                kind: FaultKind::LinkDown { switch: 5, output: 0 },
            },
            FaultEvent {
                slot: 90,
                kind: FaultKind::LinkUp { switch: 5, output: 0 },
            },
            FaultEvent {
                slot: 60,
                kind: FaultKind::PortFail {
                    switch: 11,
                    side: PortSide::Input,
                    port: 3,
                },
            },
            FaultEvent {
                slot: 120,
                kind: FaultKind::PortRecover {
                    switch: 11,
                    side: PortSide::Input,
                    port: 3,
                },
            },
            FaultEvent {
                slot: 70,
                kind: FaultKind::CellDrop { switch: 2, input: 4 },
            },
            FaultEvent {
                slot: 75,
                kind: FaultKind::ClockDrift { switch: 9, slots: 8 },
            },
        ])
    }

    #[test]
    fn faulted_run_is_thread_count_independent() {
        let cfg = small();
        let plan = burst_plan();
        let a = run_shard_net_faulted(&cfg, &plan, &Pool::serial());
        let b = run_shard_net_faulted(&cfg, &plan, &Pool::new(4));
        let c = run_shard_net_faulted(&cfg, &plan, &Pool::new(3));
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.digest, c.digest);
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.to_string(), c.to_string());
    }

    #[test]
    fn ring_link_outage_recovers_with_bounded_backoff() {
        let cfg = small();
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                slot: 100,
                kind: FaultKind::LinkDown { switch: 7, output: 0 },
            },
            FaultEvent {
                slot: 140,
                kind: FaultKind::LinkUp { switch: 7, output: 0 },
            },
        ]);
        let r = run_shard_net_faulted(&cfg, &plan, &Pool::serial());
        assert!(r.is_conserved());
        assert_eq!(r.recoveries, 1, "one outage, one recovery");
        // The outage lasted 40 slots; backoff doubles 1,2,4,... so the
        // reservation lands within MAX_BACKOFF slots of the repair.
        assert!(r.recovery_slots >= 40, "recovered before the link came back");
        assert!(
            r.recovery_slots < 140 - 100 + MAX_BACKOFF,
            "recovery {} slots exceeds the backoff bound",
            r.recovery_slots
        );
        assert!(r.res_attempts > r.recoveries, "probes should precede recovery");
        assert!(r.delivered > 0);
        // applied = 2 scripted events + 1 synthetic in-flight drop probe.
        assert_eq!(r.faults_applied, 3);
    }

    #[test]
    fn faulted_drops_are_charged_to_the_ledger() {
        let mut cfg = small();
        cfg.host_load = 0.2; // busy enough that drops actually strike
        let mut events = Vec::new();
        for slot in 100..140 {
            events.push(FaultEvent {
                slot,
                kind: FaultKind::CellDrop { switch: 3, input: 2 },
            });
        }
        let plan = FaultPlan::from_events(events);
        let r = run_shard_net_faulted(&cfg, &plan, &Pool::serial());
        assert!(r.is_conserved());
        assert!(r.dropped > 0, "forty drop slots at 20% load must hit");
        assert_eq!(r.faults_applied, 40);
    }
}
