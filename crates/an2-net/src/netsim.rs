//! A multi-switch, arbitrary-topology datagram network simulator.
//!
//! The AN2 network is "a collection of switches, links, and host network
//! controllers" in any topology (§2); routing is per-flow and static. This
//! module simulates such a network slot-synchronously: hosts inject cells,
//! each switch runs its own scheduler over its random-access input buffers
//! (PIM by default), and departed cells propagate over links with latency
//! toward per-flow sinks.
//!
//! This substrate powers the Figure 9 fairness experiment (flows merging
//! through a chain of switches toward one bottleneck link) and is general
//! enough for arbitrary topologies.
//!
//! # Faults and recovery
//!
//! A network optionally carries a [`FaultPlan`]
//! ([`Network::set_fault_plan`]): links go down and come back, ports fail,
//! cells are lost or corrupted in flight, clocks drift. When a link fails
//! the network behaves the way §2's control software would: in-flight cells
//! on the link are lost, the upstream output is masked out of scheduling,
//! and every flow routed over the link is re-routed along the shortest
//! surviving path (releasing and re-reserving any CBR frame reservations
//! with bounded exponential backoff; a flow whose reservation cannot be
//! re-established degrades to best-effort instead of failing). Everything
//! that happens is recorded in a [`FaultLog`] — drops never panic. An empty
//! plan leaves the simulation bit-identical to one without a fault layer.

use an2_sched::rng::SelectRng as _;
use an2_sched::{FrameSchedule, InputPort, OutputPort, Pim, PortMask, Scheduler};
use an2_sim::cell::{Cell, FlowId};
use an2_sim::fault::{DropCause, FaultKind, FaultLog, FaultPlan, PortSide};
use an2_sim::voq::{ServiceDiscipline, VoqBuffers};
use an2_sched::det::DetHashMap;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a switch within a [`Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(usize);

/// A configuration problem detected while building or validating a
/// [`Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// A switch id does not exist in this network.
    UnknownSwitch {
        /// The offending switch id.
        switch: SwitchId,
    },
    /// A port index is outside a switch's radix.
    PortOutOfRange {
        /// The switch whose port range was exceeded.
        switch: SwitchId,
        /// The offending port index.
        port: usize,
        /// The switch's radix.
        ports: usize,
    },
    /// A link was declared with zero latency.
    BadLatency,
    /// An input port already has a source attached.
    DuplicateSource {
        /// The switch with the contested input.
        switch: SwitchId,
        /// The contested input port index.
        port: usize,
    },
    /// A flow was given a second, different route at one switch.
    ConflictingRoute {
        /// The re-routed flow.
        flow: FlowId,
        /// The switch with the conflicting entry.
        switch: SwitchId,
    },
    /// A source was declared with no flows to inject.
    NoFlows,
    /// A source rate was outside `[0, 1]` (or not finite).
    InvalidRate,
    /// A flow reaches a switch that has no route entry for it.
    MissingRoute {
        /// The flow without a route.
        flow: FlowId,
        /// The switch where the route is missing.
        switch: SwitchId,
    },
    /// A flow's route revisits a switch.
    RoutingLoop {
        /// The looping flow.
        flow: FlowId,
        /// The first switch revisited.
        switch: SwitchId,
    },
    /// No link path exists between two switches.
    Unreachable {
        /// The starting switch.
        from: SwitchId,
        /// The unreachable switch.
        to: SwitchId,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownSwitch { switch } => write!(f, "switch {switch} does not exist"),
            Self::PortOutOfRange { switch, port, ports } => {
                write!(f, "port {port} out of range for {switch} ({ports} ports)")
            }
            Self::BadLatency => write!(f, "link latency must be at least one slot"),
            Self::DuplicateSource { switch, port } => {
                write!(f, "input {port} of {switch} already has a source")
            }
            Self::ConflictingRoute { flow, switch } => {
                write!(f, "flow {flow} re-routed at {switch}; routes are static")
            }
            Self::NoFlows => write!(f, "a source must inject at least one flow"),
            Self::InvalidRate => write!(f, "rate must be in [0, 1]"),
            Self::MissingRoute { flow, switch } => {
                write!(f, "flow {flow} has no route at {switch}")
            }
            Self::RoutingLoop { flow, switch } => {
                write!(f, "flow {flow} loops back to {switch}")
            }
            Self::Unreachable { from, to } => {
                write!(f, "no link path from {from} to {to}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Error returned by [`Network::reserve_flow`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReserveFlowError {
    /// The flow is not attached to any source, so its entry is unknown.
    UnknownFlow(FlowId),
    /// The flow's route is incomplete or invalid.
    Topology(TopologyError),
    /// A switch on the path lacks frame capacity for the reservation.
    Reservation(an2_sched::ReservationError),
}

impl fmt::Display for ReserveFlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownFlow(flow) => write!(f, "flow {flow} has no source"),
            Self::Topology(e) => write!(f, "cannot reserve: {e}"),
            Self::Reservation(e) => write!(f, "cannot reserve: {e}"),
        }
    }
}

impl std::error::Error for ReserveFlowError {}

impl From<TopologyError> for ReserveFlowError {
    fn from(e: TopologyError) -> Self {
        Self::Topology(e)
    }
}

impl From<an2_sched::ReservationError> for ReserveFlowError {
    fn from(e: an2_sched::ReservationError) -> Self {
        Self::Reservation(e)
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

/// Where a switch output port leads.
#[derive(Clone, Copy, Debug)]
enum PortTarget {
    /// A link to another switch's input port, with latency in slots.
    Link {
        to: SwitchId,
        port: InputPort,
        latency: u64,
        /// Links start up; a [`FaultKind::LinkDown`] takes one down.
        up: bool,
    },
    /// Delivery to the destination host (cells are counted per flow).
    Sink,
}

struct SwitchNode {
    voq: VoqBuffers,
    scheduler: Box<dyn Scheduler>,
    /// Flow → output port at this switch.
    routes: DetHashMap<FlowId, OutputPort>,
    /// Wiring of output ports; unwired ports are sinks.
    targets: Vec<PortTarget>,
    /// Ports currently in service; mirrors what the scheduler was told.
    mask: PortMask,
    /// Scheduling is suspended until this slot (clock-drift excursions).
    drift_until: u64,
    /// CBR frame schedule, if reservations are enabled at this switch.
    frame: Option<FrameSchedule>,
}

impl fmt::Debug for SwitchNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwitchNode")
            .field("n", &self.voq.n())
            .field("scheduler", &self.scheduler.name())
            .field("routes", &self.routes.len())
            .field("mask", &self.mask)
            .finish()
    }
}

/// A traffic source attached to one switch input port.
#[derive(Clone, Debug)]
struct Source {
    switch: SwitchId,
    port: InputPort,
    /// Flows injected round-robin by this source.
    flows: Vec<FlowId>,
    next_flow: usize,
    /// Cells offered per slot (1.0 = saturating).
    rate: f64,
    rng: an2_sched::rng::Xoshiro256,
}

/// What the network knows about a flow for recovery purposes.
#[derive(Clone, Debug)]
struct FlowSpec {
    /// Switch and input port where the flow enters the network.
    entry: SwitchId,
    entry_port: InputPort,
    /// Exit hop, learned the first time the full path is walked.
    exit: Option<(SwitchId, OutputPort)>,
    /// CBR cells per frame (0 = best-effort).
    cbr_cells: usize,
    /// Hops currently holding frame reservations for this flow.
    reserved: Vec<(SwitchId, InputPort, OutputPort)>,
    /// `true` once re-reservation retries were exhausted.
    degraded: bool,
}

/// A pending CBR re-reservation attempt.
#[derive(Clone, Copy, Debug)]
struct Retry {
    flow: FlowId,
    next_slot: u64,
    attempt: u32,
}

/// Re-reservation attempts before a flow degrades to best-effort.
const MAX_RESERVE_ATTEMPTS: u32 = 5;

/// A slot-synchronous multi-switch network.
///
/// # Examples
///
/// Two switches in a row; a flow crosses both:
///
/// ```
/// use an2_net::netsim::Network;
/// use an2_sched::{InputPort, OutputPort};
/// use an2_sim::cell::FlowId;
///
/// let mut net = Network::new(7);
/// let a = net.add_switch(2);
/// let b = net.add_switch(2);
/// net.connect(a, OutputPort::new(1), b, InputPort::new(0), 1).unwrap();
/// let flow = FlowId(1);
/// net.add_route(a, flow, OutputPort::new(1)).unwrap();
/// net.add_route(b, flow, OutputPort::new(1)).unwrap();
/// net.add_source(a, InputPort::new(0), vec![flow], 1.0).unwrap();
/// net.run(100);
/// assert!(net.delivered(flow) > 90);
/// ```
pub struct Network {
    switches: Vec<SwitchNode>,
    sources: Vec<Source>,
    /// Cells in flight on links, keyed by delivery slot.
    in_flight: BTreeMap<u64, Vec<(SwitchId, InputPort, FlowId, u64)>>,
    /// Cells delivered end-to-end, per flow.
    delivered: DetHashMap<FlowId, u64>,
    /// Sum of end-to-end latencies (slots), per flow.
    latency_sum: DetHashMap<FlowId, u64>,
    slot: u64,
    seed: u64,
    /// Scripted faults; empty by default (and then entirely inert).
    plan: FaultPlan,
    /// Everything the fault layer did: applied events, drops, recoveries.
    log: FaultLog,
    /// Per-flow recovery state, registered by [`Network::add_source`].
    flows: DetHashMap<FlowId, FlowSpec>,
    /// Pending CBR re-reservation retries (exponential backoff).
    retries: Vec<Retry>,
    /// `(switch, input, cause)` arrival faults active this slot only.
    arrival_faults: Vec<(usize, usize, DropCause)>,
    /// Lifetime count of cells injected at sources. Unlike the per-flow
    /// delivery counters this ledger survives [`Network::reset_counters`],
    /// so the conservation invariant can be checked at any point.
    injected_ledger: u64,
    /// Lifetime count of cells delivered to sinks (same lifetime rule).
    delivered_ledger: u64,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("switches", &self.switches.len())
            .field("sources", &self.sources.len())
            .field("slot", &self.slot)
            .field("faults_pending", &self.plan.remaining())
            .finish()
    }
}

impl Network {
    /// Creates an empty network; `seed` drives every random choice.
    pub fn new(seed: u64) -> Self {
        Self {
            switches: Vec::new(),
            sources: Vec::new(),
            in_flight: BTreeMap::new(),
            delivered: DetHashMap::default(),
            latency_sum: DetHashMap::default(),
            slot: 0,
            seed,
            plan: FaultPlan::new(),
            log: FaultLog::new(),
            flows: DetHashMap::default(),
            retries: Vec::new(),
            arrival_faults: Vec::new(),
            injected_ledger: 0,
            delivered_ledger: 0,
        }
    }

    /// Adds an `n`-port switch scheduled by PIM with the AN2 default of
    /// four iterations.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > MAX_PORTS`.
    pub fn add_switch(&mut self, n: usize) -> SwitchId {
        let id = SwitchId(self.switches.len());
        let seed = self.seed ^ (id.0 as u64).wrapping_mul(0xA24B_AED4_963E_E407);
        self.add_switch_with(
            n,
            Box::new(Pim::new(n, seed)),
            ServiceDiscipline::RoundRobin,
        )
    }

    /// Adds an `n`-port switch with an explicit scheduler and flow-service
    /// discipline.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > MAX_PORTS`.
    pub fn add_switch_with(
        &mut self,
        n: usize,
        scheduler: Box<dyn Scheduler>,
        discipline: ServiceDiscipline,
    ) -> SwitchId {
        let id = SwitchId(self.switches.len());
        self.switches.push(SwitchNode {
            voq: VoqBuffers::with_discipline(n, discipline),
            scheduler,
            routes: DetHashMap::default(),
            targets: vec![PortTarget::Sink; n],
            mask: PortMask::all(n),
            drift_until: 0,
            frame: None,
        });
        id
    }

    fn check_switch(&self, sw: SwitchId) -> Result<(), TopologyError> {
        if sw.0 < self.switches.len() {
            Ok(())
        } else {
            Err(TopologyError::UnknownSwitch { switch: sw })
        }
    }

    fn check_port(&self, sw: SwitchId, port: usize) -> Result<(), TopologyError> {
        self.check_switch(sw)?;
        let ports = self.switches[sw.0].voq.n();
        if port < ports {
            Ok(())
        } else {
            Err(TopologyError::PortOutOfRange {
                switch: sw,
                port,
                ports,
            })
        }
    }

    /// Wires output `out` of switch `from` to input `inp` of switch `to`
    /// with the given link latency in slots (minimum 1: a cell departs one
    /// slot and is eligible downstream the next). The link starts up.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if either switch id or port is out of
    /// range, or `latency == 0`.
    pub fn connect(
        &mut self,
        from: SwitchId,
        out: OutputPort,
        to: SwitchId,
        inp: InputPort,
        latency: u64,
    ) -> Result<(), TopologyError> {
        if latency == 0 {
            return Err(TopologyError::BadLatency);
        }
        self.check_port(to, inp.index())?;
        self.check_port(from, out.index())?;
        self.switches[from.0].targets[out.index()] = PortTarget::Link {
            to,
            port: inp,
            latency,
            up: true,
        };
        Ok(())
    }

    /// Declares that at switch `sw`, cells of `flow` leave via output
    /// `out`. Every switch a flow traverses needs a route entry ("a
    /// routing table in each switch ... determines the output port for
    /// each flow").
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if the switch or port is out of range,
    /// or the flow already has a different route at this switch.
    pub fn add_route(
        &mut self,
        sw: SwitchId,
        flow: FlowId,
        out: OutputPort,
    ) -> Result<(), TopologyError> {
        self.check_port(sw, out.index())?;
        let node = &mut self.switches[sw.0];
        if let Some(&prev) = node.routes.get(&flow) {
            if prev != out {
                return Err(TopologyError::ConflictingRoute { flow, switch: sw });
            }
        }
        node.routes.insert(flow, out);
        Ok(())
    }

    /// Attaches a host source to input `port` of switch `sw`, injecting the
    /// given flows round-robin at `rate` cells per slot (1.0 = the link is
    /// saturated).
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if the switch or port is out of range,
    /// `flows` is empty, `rate` is outside `[0, 1]`, or the port already
    /// has a source.
    pub fn add_source(
        &mut self,
        sw: SwitchId,
        port: InputPort,
        flows: Vec<FlowId>,
        rate: f64,
    ) -> Result<(), TopologyError> {
        self.check_port(sw, port.index())?;
        if flows.is_empty() {
            return Err(TopologyError::NoFlows);
        }
        if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
            return Err(TopologyError::InvalidRate);
        }
        if self
            .sources
            .iter()
            .any(|s| s.switch == sw && s.port == port)
        {
            return Err(TopologyError::DuplicateSource {
                switch: sw,
                port: port.index(),
            });
        }
        for &flow in &flows {
            self.flows.entry(flow).or_insert(FlowSpec {
                entry: sw,
                entry_port: port,
                exit: None,
                cbr_cells: 0,
                reserved: Vec::new(),
                degraded: false,
            });
        }
        let seed = self.seed
            ^ (self.sources.len() as u64 + 1).wrapping_mul(0x9FB2_1C65_1E98_DF25);
        self.sources.push(Source {
            switch: sw,
            port,
            flows,
            next_flow: 0,
            rate,
            rng: an2_sched::rng::Xoshiro256::seed_from(seed),
        });
        Ok(())
    }

    /// Bounds every VOQ of switch `sw` to `capacity` cells per input-output
    /// pair (`None` = unbounded, the default). Applies to future arrivals;
    /// over-capacity arrivals are dropped (drop-tail) and counted in the
    /// [`FaultLog`].
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownSwitch`] for a bad id.
    pub fn set_buffer_capacity(
        &mut self,
        sw: SwitchId,
        capacity: Option<usize>,
    ) -> Result<(), TopologyError> {
        self.check_switch(sw)?;
        self.switches[sw.0].voq.set_pair_capacity(capacity);
        Ok(())
    }

    /// Enables CBR frame reservations at switch `sw` with `frame_len` slots
    /// per frame (1000 in the AN2 prototype).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownSwitch`] for a bad id.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len == 0` (a frame must contain slots).
    pub fn enable_cbr(&mut self, sw: SwitchId, frame_len: usize) -> Result<(), TopologyError> {
        self.check_switch(sw)?;
        let n = self.switches[sw.0].voq.n();
        self.switches[sw.0].frame = Some(FrameSchedule::new(n, frame_len));
        Ok(())
    }

    /// The frame schedule of switch `sw`, if CBR is enabled there.
    pub fn cbr_schedule(&self, sw: SwitchId) -> Option<&FrameSchedule> {
        self.switches.get(sw.0).and_then(|s| s.frame.as_ref())
    }

    /// Reserves `cells` per frame for `flow` at every CBR-enabled switch on
    /// its current path. The reservation follows the flow across reroutes:
    /// link recovery releases it on the old path and re-reserves on the new
    /// one (with bounded exponential backoff; see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`ReserveFlowError`] if the flow has no source, its route is
    /// incomplete, or a switch on the path lacks frame capacity. On error
    /// nothing stays reserved.
    pub fn reserve_flow(&mut self, flow: FlowId, cells: usize) -> Result<(), ReserveFlowError> {
        let spec = self
            .flows
            .get(&flow)
            .ok_or(ReserveFlowError::UnknownFlow(flow))?;
        let (entry, entry_port) = (spec.entry, spec.entry_port);
        let hops = self
            .trace_route(flow, entry, entry_port)
            .ok_or(TopologyError::MissingRoute {
                flow,
                switch: entry,
            })?;
        let reserved = self.reserve_hops(&hops, cells)?;
        let exit = hops.last().map(|&(sw, _, out)| (sw, out));
        let spec = self.flows.get_mut(&flow).expect("checked above");
        spec.cbr_cells = cells;
        spec.reserved = reserved;
        spec.degraded = false;
        if spec.exit.is_none() {
            spec.exit = exit;
        }
        Ok(())
    }

    /// Reserves `cells` at every CBR-enabled hop, rolling back on failure.
    fn reserve_hops(
        &mut self,
        hops: &[(SwitchId, InputPort, OutputPort)],
        cells: usize,
    ) -> Result<Vec<(SwitchId, InputPort, OutputPort)>, an2_sched::ReservationError> {
        let mut done: Vec<(SwitchId, InputPort, OutputPort)> = Vec::new();
        for &(sw, inp, out) in hops {
            if let Some(frame) = self.switches[sw.0].frame.as_mut() {
                if let Err(e) = frame.reserve(inp, out, cells) {
                    for &(s2, i2, o2) in &done {
                        self.switches[s2.0]
                            .frame
                            .as_mut()
                            .expect("reserved hop has a frame schedule")
                            .release(i2, o2, cells)
                            .expect("releasing a reservation just made");
                    }
                    return Err(e);
                }
                done.push((sw, inp, out));
            }
        }
        Ok(done)
    }

    /// Releases whatever `flow` currently has reserved.
    fn release_reservations(&mut self, flow: FlowId) {
        let Some(spec) = self.flows.get_mut(&flow) else {
            return;
        };
        let cells = spec.cbr_cells;
        let reserved = std::mem::take(&mut spec.reserved);
        for (sw, inp, out) in reserved {
            self.switches[sw.0]
                .frame
                .as_mut()
                .expect("reserved hop has a frame schedule")
                .release(inp, out, cells)
                .expect("releasing an existing reservation");
        }
    }

    /// Installs a scripted fault plan; events fire as [`Network::step`]
    /// passes their slots. An empty plan (the default) changes nothing.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// Everything the fault layer did so far: applied events, cell drops
    /// (with causes), reroutes, re-reservation attempts, degraded flows.
    pub fn fault_log(&self) -> &FaultLog {
        &self.log
    }

    /// `true` if `flow` lost its CBR reservation and now runs best-effort.
    pub fn flow_degraded(&self, flow: FlowId) -> bool {
        self.flows.get(&flow).is_some_and(|s| s.degraded)
    }

    /// Whether the link out of `sw` via `out` is up. `None` if the port is
    /// a sink or out of range.
    pub fn link_is_up(&self, sw: SwitchId, out: OutputPort) -> Option<bool> {
        match self.switches.get(sw.0)?.targets.get(out.index())? {
            PortTarget::Link { up, .. } => Some(*up),
            PortTarget::Sink => None,
        }
    }

    /// The current slot number.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Cells delivered end-to-end for `flow` so far.
    pub fn delivered(&self, flow: FlowId) -> u64 {
        self.delivered.get(&flow).copied().unwrap_or(0)
    }

    /// Mean end-to-end latency (slots) of delivered cells of `flow`, if any
    /// were delivered.
    pub fn mean_latency(&self, flow: FlowId) -> Option<f64> {
        let n = self.delivered(flow);
        (n > 0).then(|| *self.latency_sum.get(&flow).unwrap_or(&0) as f64 / n as f64)
    }

    /// Total cells buffered across all switches.
    pub fn queued(&self) -> usize {
        self.switches.iter().map(|s| s.voq.len()).sum()
    }

    /// Lifetime count of cells injected at sources (never reset).
    pub fn injected_cells(&self) -> u64 {
        self.injected_ledger
    }

    /// Lifetime count of cells delivered to sinks (never reset; the
    /// per-flow [`Network::delivered`] counters *are* reset by
    /// [`Network::reset_counters`]).
    pub fn delivered_cells(&self) -> u64 {
        self.delivered_ledger
    }

    /// Cells currently in flight on links.
    pub fn in_flight_cells(&self) -> u64 {
        self.in_flight.values().map(|v| v.len() as u64).sum()
    }

    /// Verifies the network-wide invariants the AN2 design promises:
    ///
    /// * **frame consistency** — every switch with CBR reservations has a
    ///   frame schedule whose per-pair scheduled counts equal its demand
    ///   matrix ([`FrameSchedule::verify`]);
    /// * **VOQ capacity** — no per-pair queue exceeds its configured
    ///   budget;
    /// * **cell conservation** — every cell ever injected is queued, in
    ///   flight, delivered, or dropped with a recorded cause (including
    ///   under fault plans: scripted losses, dead links, reroute spills
    ///   and no-route drops all land in the [`FaultLog`]).
    ///
    /// Returns the first violation as a description, or `Ok(())`. Pure
    /// reads — calling this never perturbs the simulation.
    pub fn verify_invariants(&self) -> Result<(), String> {
        for (idx, node) in self.switches.iter().enumerate() {
            if let Some(frame) = &node.frame {
                if !frame.verify() {
                    return Err(format!("switch {idx}: frame schedule inconsistent"));
                }
            }
            if !node.voq.capacity_invariant_holds() {
                return Err(format!("switch {idx}: VOQ occupancy exceeds capacity"));
            }
        }
        let queued = self.queued() as u64;
        let in_flight = self.in_flight_cells();
        let dropped = self.log.cells_dropped();
        let accounted = self.delivered_ledger + queued + in_flight + dropped;
        if self.injected_ledger != accounted {
            return Err(format!(
                "cell conservation violated: injected {} != delivered {} + queued {queued} \
                 + in-flight {in_flight} + dropped {dropped}",
                self.injected_ledger, self.delivered_ledger
            ));
        }
        Ok(())
    }

    /// Resets the delivery counters (warmup truncation); queues and
    /// scheduler state are preserved.
    pub fn reset_counters(&mut self) {
        self.delivered.clear();
        self.latency_sum.clear();
    }

    /// Advances the network by `slots` time slots.
    pub fn run(&mut self, slots: u64) {
        for _ in 0..slots {
            self.step();
        }
    }

    /// Advances one slot: apply due faults, deliver in-flight link cells,
    /// inject from sources, schedule and forward at every switch.
    ///
    /// Cells that cannot proceed — no route, dead link, full buffer,
    /// scripted loss — are dropped and counted in the [`FaultLog`], never
    /// panicked on.
    pub fn step(&mut self) {
        let now = self.slot;
        self.arrival_faults.clear();
        if self.plan.remaining() > 0 {
            self.apply_due_faults(now);
        }
        if !self.retries.is_empty() {
            self.process_retries(now);
        }
        // 1. Link deliveries scheduled for this slot enter downstream VOQs.
        if let Some(batch) = self.in_flight.remove(&now) {
            for (sw, port, flow, injected_at) in batch {
                self.enqueue(sw, port, flow, injected_at);
            }
        }
        // 2. Sources inject (at most one cell per input port per slot).
        for si in 0..self.sources.len() {
            let (go, sw, port, flow) = {
                let s = &mut self.sources[si];
                let go = s.rate >= 1.0 || s.rng.bernoulli(s.rate);
                let flow = s.flows[s.next_flow % s.flows.len()];
                if go {
                    s.next_flow = (s.next_flow + 1) % s.flows.len();
                }
                (go, s.switch, s.port, flow)
            };
            if go {
                self.injected_ledger += 1;
                self.enqueue(sw, port, flow, now);
            }
        }
        // 3. Every switch schedules and forwards independently ("there is
        //    no centralized scheduler").
        for sw_idx in 0..self.switches.len() {
            if now < self.switches[sw_idx].drift_until {
                // Clock excursion: arrivals buffer, the crossbar idles.
                continue;
            }
            let matching = {
                let node = &mut self.switches[sw_idx];
                let requests = node.voq.requests();
                let matching = node.scheduler.schedule(requests);
                debug_assert!(matching.respects(requests));
                matching
            };
            for (i, j) in matching.pairs() {
                let cell = self.switches[sw_idx]
                    .voq
                    .pop(i, j)
                    .expect("scheduler contract: matched pairs have queued cells");
                match self.switches[sw_idx].targets[j.index()] {
                    PortTarget::Link {
                        to,
                        port,
                        latency,
                        up,
                    } => {
                        if up {
                            self.in_flight
                                .entry(now + latency)
                                .or_default()
                                .push((to, port, cell.flow, cell.arrival_slot));
                        } else {
                            // A recovered port can feed a still-dead link.
                            self.log.record_drop(
                                now,
                                sw_idx,
                                i.index(),
                                cell.flow.0,
                                DropCause::DeadLink,
                            );
                        }
                    }
                    PortTarget::Sink => {
                        self.delivered_ledger += 1;
                        *self.delivered.entry(cell.flow).or_insert(0) += 1;
                        *self.latency_sum.entry(cell.flow).or_insert(0) +=
                            now - cell.arrival_slot;
                    }
                }
            }
        }
        self.slot += 1;
    }

    /// Applies every plan event due at `now`, in plan order.
    fn apply_due_faults(&mut self, now: u64) {
        let events: Vec<_> = self.plan.due(now).to_vec();
        for e in events {
            self.log.record_applied(e);
            match e.kind {
                FaultKind::LinkDown { switch, output } => {
                    self.fault_link_down(now, switch, output);
                }
                FaultKind::LinkUp { switch, output } => self.fault_link_up(now, switch, output),
                FaultKind::PortFail { switch, side, port } => {
                    self.fault_port(switch, side, port, false);
                }
                FaultKind::PortRecover { switch, side, port } => {
                    self.fault_port(switch, side, port, true);
                }
                FaultKind::CellDrop { switch, input } => {
                    self.arrival_faults.push((switch, input, DropCause::Injected));
                }
                FaultKind::CellCorrupt { switch, input } => {
                    self.arrival_faults
                        .push((switch, input, DropCause::Corrupted));
                }
                FaultKind::ClockDrift { switch, slots } => {
                    if let Some(node) = self.switches.get_mut(switch) {
                        node.drift_until = node.drift_until.max(now.saturating_add(slots));
                    }
                }
            }
        }
    }

    /// Masks or unmasks one port; events against unknown switches or ports
    /// are ignored (a fault plan is data, not trusted configuration).
    fn fault_port(&mut self, switch: usize, side: PortSide, port: usize, up: bool) {
        let Some(node) = self.switches.get_mut(switch) else {
            return;
        };
        if port >= node.voq.n() {
            return;
        }
        let changed = match (side, up) {
            (PortSide::Input, false) => node.mask.fail_input(port),
            (PortSide::Input, true) => node.mask.recover_input(port),
            (PortSide::Output, false) => node.mask.fail_output(port),
            (PortSide::Output, true) => node.mask.recover_output(port),
        };
        if changed {
            node.scheduler.set_port_mask(node.mask);
        }
    }

    /// Takes the link out of `switch` via `output` down: in-flight cells on
    /// it are lost, the upstream output is masked, and every flow routed
    /// over it is rerouted (or stranded, with its queued cells dropped).
    fn fault_link_down(&mut self, now: u64, switch: usize, output: usize) {
        let Some(node) = self.switches.get(switch) else {
            return;
        };
        let Some(&PortTarget::Link {
            to,
            port,
            latency,
            up,
        }) = node.targets.get(output)
        else {
            return;
        };
        if !up {
            return;
        }
        self.switches[switch].targets[output] = PortTarget::Link {
            to,
            port,
            latency,
            up: false,
        };
        // Cells in flight on this link are lost.
        for batch in self.in_flight.values_mut() {
            batch.retain(|&(sw, inp, flow, _)| {
                let on_link = sw == to && inp == port;
                if on_link {
                    self.log
                        .record_drop(now, to.0, port.index(), flow.0, DropCause::DeadLink);
                }
                !on_link
            });
        }
        self.fault_port(switch, PortSide::Output, output, false);
        // Reroute every registered flow that crossed the link.
        let affected: Vec<FlowId> = self.switches[switch]
            .routes
            .iter()
            .filter(|(_, out)| out.index() == output)
            .map(|(&flow, _)| flow)
            .filter(|flow| self.flows.contains_key(flow))
            .collect();
        for flow in affected {
            self.reroute_flow(now, flow);
        }
    }

    /// Brings the link back up, unmasks the output, and repairs any
    /// registered flow left without a complete route.
    fn fault_link_up(&mut self, now: u64, switch: usize, output: usize) {
        let Some(node) = self.switches.get(switch) else {
            return;
        };
        let Some(&PortTarget::Link {
            to,
            port,
            latency,
            up,
        }) = node.targets.get(output)
        else {
            return;
        };
        if up {
            return;
        }
        self.switches[switch].targets[output] = PortTarget::Link {
            to,
            port,
            latency,
            up: true,
        };
        self.fault_port(switch, PortSide::Output, output, true);
        let broken: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(flow, spec)| {
                spec.exit.is_some() && self.trace_route(**flow, spec.entry, spec.entry_port).is_none()
            })
            .map(|(flow, _)| *flow)
            .collect();
        for flow in broken {
            self.reroute_flow(now, flow);
        }
    }

    /// Walks `flow`'s installed routes from `start`, ignoring link up/down
    /// state, and returns the `(switch, input, output)` hops ending at a
    /// sink — or `None` if the route is incomplete or loops.
    fn trace_route(
        &self,
        flow: FlowId,
        start: SwitchId,
        entry_port: InputPort,
    ) -> Option<Vec<(SwitchId, InputPort, OutputPort)>> {
        let mut hops = Vec::new();
        let mut here = start;
        let mut inp = entry_port;
        let mut visited = an2_sched::det::DetHashSet::default();
        loop {
            if !visited.insert(here) {
                return None;
            }
            let node = self.switches.get(here.0)?;
            let &out = node.routes.get(&flow)?;
            hops.push((here, inp, out));
            match node.targets[out.index()] {
                PortTarget::Link { to, port, .. } => {
                    here = to;
                    inp = port;
                }
                PortTarget::Sink => return Some(hops),
            }
        }
    }

    /// Moves `flow` to the shortest path over up links, or strands it:
    /// release reservations, tear down the old route, drop or redirect
    /// queued cells, reinstall, and kick off CBR re-reservation.
    fn reroute_flow(&mut self, now: u64, flow: FlowId) {
        let Some(spec) = self.flows.get(&flow) else {
            return;
        };
        let (entry, entry_port) = (spec.entry, spec.entry_port);
        let old_hops = self.trace_route(flow, entry, entry_port);
        let exit = old_hops
            .as_ref()
            .and_then(|h| h.last().map(|&(sw, _, out)| (sw, out)))
            .or(spec.exit);
        self.release_reservations(flow);
        self.retries.retain(|r| r.flow != flow);
        if let Some(spec) = self.flows.get_mut(&flow) {
            spec.exit = exit;
        }
        // Tear down the old route everywhere (walked hops if known, every
        // switch otherwise — a broken trace means stale partial state).
        let old: Vec<(SwitchId, InputPort, OutputPort)> = match old_hops {
            Some(h) => h,
            None => (0..self.switches.len())
                .map(|i| (SwitchId(i), InputPort::new(0), OutputPort::new(0)))
                .collect(),
        };
        for &(sw, _, _) in &old {
            self.switches[sw.0].routes.remove(&flow);
        }
        let Some((exit_sw, exit_port)) = exit else {
            // Exit never learned: nothing more we can do beyond dropping.
            self.drop_flow_everywhere(now, flow, &old);
            return;
        };
        match self.route_over_up_links(flow, entry, exit_sw, exit_port) {
            Ok(new_len) => {
                // Redirect queued cells at surviving hops, drop the rest.
                for &(sw, inp, old_out) in &old {
                    match self.switches[sw.0].routes.get(&flow).copied() {
                        Some(new_out) if new_out != old_out => {
                            let n = self.switches[sw.0].voq.redirect_flow(flow, new_out);
                            for _ in 0..n {
                                self.log.record_drop(
                                    now,
                                    sw.0,
                                    inp.index(),
                                    flow.0,
                                    DropCause::BufferFull,
                                );
                            }
                        }
                        Some(_) => {}
                        None => {
                            let n = self.switches[sw.0].voq.drop_flow(flow);
                            for _ in 0..n {
                                self.log.record_drop(
                                    now,
                                    sw.0,
                                    inp.index(),
                                    flow.0,
                                    DropCause::DeadLink,
                                );
                            }
                        }
                    }
                }
                self.log.record_reroute(now, flow.0, new_len);
                let cells = self.flows.get(&flow).map_or(0, |s| s.cbr_cells);
                if cells > 0 {
                    self.attempt_reservation(now, flow, 1);
                }
            }
            Err(_) => {
                // Stranded: no surviving path. Queued cells are lost;
                // future injections become NoRoute drops. A later LinkUp
                // retries the route.
                self.drop_flow_everywhere(now, flow, &old);
                let cells = self.flows.get(&flow).map_or(0, |s| s.cbr_cells);
                if cells > 0 {
                    self.mark_degraded(flow);
                }
            }
        }
    }

    /// Drops `flow`'s queued cells at every listed hop, counting each loss.
    fn drop_flow_everywhere(
        &mut self,
        now: u64,
        flow: FlowId,
        hops: &[(SwitchId, InputPort, OutputPort)],
    ) {
        for &(sw, inp, _) in hops {
            let n = self.switches[sw.0].voq.drop_flow(flow);
            for _ in 0..n {
                self.log
                    .record_drop(now, sw.0, inp.index(), flow.0, DropCause::DeadLink);
            }
        }
    }

    /// Flags `flow` as degraded to best-effort (once).
    fn mark_degraded(&mut self, flow: FlowId) {
        if let Some(spec) = self.flows.get_mut(&flow) {
            if !spec.degraded {
                spec.degraded = true;
                self.log.record_degraded(flow.0);
            }
        }
    }

    /// BFS shortest path over *up* links only, installing routes. Returns
    /// the hop count.
    fn route_over_up_links(
        &mut self,
        flow: FlowId,
        entry: SwitchId,
        exit: SwitchId,
        exit_port: OutputPort,
    ) -> Result<usize, TopologyError> {
        let mut prev: Vec<Option<(SwitchId, OutputPort)>> = vec![None; self.switches.len()];
        let mut seen = vec![false; self.switches.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[entry.0] = true;
        queue.push_back(entry);
        while let Some(here) = queue.pop_front() {
            if here == exit {
                break;
            }
            for (out, target) in self.switches[here.0].targets.iter().enumerate() {
                if let PortTarget::Link { to, up: true, .. } = target {
                    if !seen[to.0] {
                        seen[to.0] = true;
                        prev[to.0] = Some((here, OutputPort::new(out)));
                        queue.push_back(*to);
                    }
                }
            }
        }
        if !seen[exit.0] {
            return Err(TopologyError::Unreachable {
                from: entry,
                to: exit,
            });
        }
        let mut hops = vec![(exit, exit_port)];
        let mut cursor = exit;
        while cursor != entry {
            let (from, out) = prev[cursor.0].expect("BFS predecessor recorded");
            hops.push((from, out));
            cursor = from;
        }
        let len = hops.len();
        for (sw, out) in hops {
            self.add_route(sw, flow, out)?;
        }
        Ok(len)
    }

    /// One CBR re-reservation attempt; schedules the next with doubled
    /// backoff on failure, or degrades the flow after the last.
    fn attempt_reservation(&mut self, now: u64, flow: FlowId, attempt: u32) {
        let ok = self.try_reserve_registered(flow);
        self.log.record_reservation(now, flow.0, attempt, ok);
        if ok {
            if let Some(spec) = self.flows.get_mut(&flow) {
                spec.degraded = false;
            }
        } else if attempt >= MAX_RESERVE_ATTEMPTS {
            self.mark_degraded(flow);
        } else {
            self.retries.push(Retry {
                flow,
                next_slot: now + (1u64 << attempt),
                attempt: attempt + 1,
            });
        }
    }

    /// Reserves the registered cells/frame along the flow's current path.
    fn try_reserve_registered(&mut self, flow: FlowId) -> bool {
        let Some(spec) = self.flows.get(&flow) else {
            return false;
        };
        let cells = spec.cbr_cells;
        if cells == 0 || !spec.reserved.is_empty() {
            return true;
        }
        let (entry, entry_port) = (spec.entry, spec.entry_port);
        let Some(hops) = self.trace_route(flow, entry, entry_port) else {
            return false;
        };
        match self.reserve_hops(&hops, cells) {
            Ok(done) => {
                if let Some(spec) = self.flows.get_mut(&flow) {
                    spec.reserved = done;
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Runs due re-reservation retries.
    fn process_retries(&mut self, now: u64) {
        let mut due = Vec::new();
        self.retries.retain(|r| {
            if r.next_slot <= now {
                due.push(*r);
                false
            } else {
                true
            }
        });
        for r in due {
            self.attempt_reservation(now, r.flow, r.attempt);
        }
    }

    /// Installs routes for `flow` along a minimum-hop link path from
    /// switch `entry` to switch `exit`, delivering there via `exit_port`
    /// (which should be a sink port). Ties between equal-length paths
    /// break deterministically by switch and port order. Down links are
    /// not used.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Unreachable`] if no up-link path exists
    /// (no routes are installed in that case),
    /// [`TopologyError::UnknownSwitch`] or
    /// [`TopologyError::PortOutOfRange`] for bad ids, and
    /// [`TopologyError::ConflictingRoute`] if the flow already has a
    /// different route on the chosen path.
    pub fn route_shortest(
        &mut self,
        flow: FlowId,
        entry: SwitchId,
        exit: SwitchId,
        exit_port: OutputPort,
    ) -> Result<(), TopologyError> {
        self.check_switch(entry)?;
        self.check_port(exit, exit_port.index())?;
        self.route_over_up_links(flow, entry, exit, exit_port)?;
        Ok(())
    }

    /// Traces the path a flow injected at switch `start` will follow:
    /// the sequence of `(switch, output port)` hops ending at a sink.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if a switch on the path lacks a route
    /// for the flow, or if the path loops.
    pub fn path_of(
        &self,
        flow: FlowId,
        start: SwitchId,
    ) -> Result<Vec<(SwitchId, OutputPort)>, TopologyError> {
        let mut path = Vec::new();
        let mut visited = an2_sched::det::DetHashSet::default();
        let mut here = start;
        loop {
            if !visited.insert(here) {
                return Err(TopologyError::RoutingLoop { flow, switch: here });
            }
            let node = self
                .switches
                .get(here.0)
                .ok_or(TopologyError::UnknownSwitch { switch: here })?;
            let out = *node
                .routes
                .get(&flow)
                .ok_or(TopologyError::MissingRoute { flow, switch: here })?;
            path.push((here, out));
            match node.targets[out.index()] {
                PortTarget::Link { to, .. } => here = to,
                PortTarget::Sink => return Ok(path),
            }
        }
    }

    /// Validates the whole configuration: every source's flows have a
    /// complete, loop-free route from their entry switch to a sink.
    ///
    /// Call after building the topology; [`step`](Self::step) would
    /// otherwise count the first violation as silent
    /// [`DropCause::NoRoute`] drops mid-simulation.
    ///
    /// # Errors
    ///
    /// Returns the first [`TopologyError`] found.
    pub fn validate(&self) -> Result<(), TopologyError> {
        for s in &self.sources {
            for &flow in &s.flows {
                self.path_of(flow, s.switch)?;
            }
        }
        Ok(())
    }

    /// Pushes a cell of `flow` into switch `sw` at input `port`, looking up
    /// the flow's output there. `injected_at` is preserved end-to-end for
    /// latency accounting. Arrival faults, missing routes, and full
    /// buffers all turn into counted drops.
    // an2-lint: allow(panic-freedom) sw and port come from the topology's validated switch table and radix; both index arrays sized at build time
    fn enqueue(&mut self, sw: SwitchId, port: InputPort, flow: FlowId, injected_at: u64) {
        let now = self.slot;
        if let Some(&(_, _, cause)) = self
            .arrival_faults
            .iter()
            .find(|&&(s, p, _)| s == sw.0 && p == port.index())
        {
            self.log.record_drop(now, sw.0, port.index(), flow.0, cause);
            return;
        }
        let node = &mut self.switches[sw.0];
        let Some(&out) = node.routes.get(&flow) else {
            self.log
                .record_drop(now, sw.0, port.index(), flow.0, DropCause::NoRoute);
            return;
        };
        // an2-lint: allow(alloc-in-hot-path) delegates to VoqBuffer::push; its amortized deque growth is justified at the definition
        let outcome = node.voq.push(Cell {
            flow,
            input: port,
            output: out,
            arrival_slot: injected_at,
        });
        if outcome.is_dropped() {
            self.log
                .record_drop(now, sw.0, port.index(), flow.0, DropCause::BufferFull);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_switch_delivers() {
        let mut net = Network::new(1);
        let s = net.add_switch(4);
        let f = FlowId(9);
        net.add_route(s, f, OutputPort::new(2)).unwrap();
        net.add_source(s, InputPort::new(0), vec![f], 0.5).unwrap();
        net.run(2000);
        let d = net.delivered(f);
        assert!((d as f64 - 1000.0).abs() < 100.0, "delivered {d}");
        assert!(net.mean_latency(f).unwrap() < 1.5);
    }

    #[test]
    fn two_hop_latency_includes_link() {
        let mut net = Network::new(2);
        let a = net.add_switch(2);
        let b = net.add_switch(2);
        net.connect(a, OutputPort::new(1), b, InputPort::new(0), 3).unwrap();
        let f = FlowId(1);
        net.add_route(a, f, OutputPort::new(1)).unwrap();
        net.add_route(b, f, OutputPort::new(0)).unwrap();
        net.add_source(a, InputPort::new(0), vec![f], 1.0).unwrap();
        net.run(50);
        assert!(net.delivered(f) > 40);
        // Uncontended path: latency = 3 (link) + 0 queueing at each hop.
        let lat = net.mean_latency(f).unwrap();
        assert!((lat - 3.0).abs() < 0.5, "latency {lat}");
    }

    #[test]
    fn contention_shares_a_bottleneck_roughly_evenly() {
        // Two saturated sources into one switch, both routed to output 3:
        // each should get about half the link.
        let mut net = Network::new(5);
        let s = net.add_switch(4);
        let (f1, f2) = (FlowId(1), FlowId(2));
        net.add_route(s, f1, OutputPort::new(3)).unwrap();
        net.add_route(s, f2, OutputPort::new(3)).unwrap();
        net.add_source(s, InputPort::new(0), vec![f1], 1.0).unwrap();
        net.add_source(s, InputPort::new(1), vec![f2], 1.0).unwrap();
        net.run(4000);
        net.reset_counters();
        net.run(10_000);
        let (d1, d2) = (net.delivered(f1) as f64, net.delivered(f2) as f64);
        assert!((d1 + d2 - 10_000.0).abs() < 100.0, "bottleneck not saturated");
        let share = d1 / (d1 + d2);
        assert!((share - 0.5).abs() < 0.05, "share {share}");
    }

    #[test]
    fn source_round_robins_flows() {
        let mut net = Network::new(3);
        let s = net.add_switch(2);
        let (f1, f2) = (FlowId(1), FlowId(2));
        net.add_route(s, f1, OutputPort::new(0)).unwrap();
        net.add_route(s, f2, OutputPort::new(1)).unwrap();
        net.add_source(s, InputPort::new(0), vec![f1, f2], 1.0).unwrap();
        net.run(1000);
        let (d1, d2) = (net.delivered(f1), net.delivered(f2));
        assert!((d1 as i64 - d2 as i64).abs() <= 2, "{d1} vs {d2}");
    }

    #[test]
    fn queued_and_reset() {
        let mut net = Network::new(4);
        let s = net.add_switch(2);
        let (f1, f2) = (FlowId(1), FlowId(2));
        // Both flows to output 0: overload (2 cells/slot offered, 1 served).
        net.add_route(s, f1, OutputPort::new(0)).unwrap();
        net.add_route(s, f2, OutputPort::new(0)).unwrap();
        net.add_source(s, InputPort::new(0), vec![f1], 1.0).unwrap();
        net.add_source(s, InputPort::new(1), vec![f2], 1.0).unwrap();
        net.run(100);
        assert!(net.queued() > 80, "queued {}", net.queued());
        net.reset_counters();
        assert_eq!(net.delivered(f1), 0);
        assert_eq!(net.slot(), 100);
        // The lifetime ledgers survive the reset, so conservation still
        // balances afterwards.
        net.verify_invariants().unwrap();
        assert!(net.delivered_cells() > 0);
    }

    #[test]
    fn conservation_holds_under_overload_and_no_route() {
        let mut net = Network::new(9);
        let s = net.add_switch(2);
        let (f1, f2) = (FlowId(1), FlowId(2));
        net.add_route(s, f1, OutputPort::new(0)).unwrap();
        // f2 has no route: every injection becomes a NoRoute drop.
        net.add_source(s, InputPort::new(0), vec![f1], 1.0).unwrap();
        net.add_source(s, InputPort::new(1), vec![f2], 1.0).unwrap();
        net.run(50);
        net.verify_invariants().unwrap();
        assert_eq!(net.injected_cells(), 100);
        assert_eq!(net.fault_log().cells_dropped(), 50);
    }

    #[test]
    fn missing_route_counts_drops_instead_of_panicking() {
        let mut net = Network::new(0);
        let s = net.add_switch(2);
        net.add_source(s, InputPort::new(0), vec![FlowId(1)], 1.0).unwrap();
        net.run(10);
        assert_eq!(net.delivered(FlowId(1)), 0);
        let log = net.fault_log();
        assert_eq!(log.cells_dropped(), 10);
        assert!(log
            .drops()
            .iter()
            .all(|d| d.cause == DropCause::NoRoute && d.switch == s.0));
    }

    #[test]
    fn duplicate_source_is_a_typed_error() {
        let mut net = Network::new(0);
        let s = net.add_switch(2);
        net.add_route(s, FlowId(1), OutputPort::new(0)).unwrap();
        net.add_source(s, InputPort::new(0), vec![FlowId(1)], 1.0).unwrap();
        let e = net
            .add_source(s, InputPort::new(0), vec![FlowId(1)], 1.0)
            .unwrap_err();
        assert_eq!(e, TopologyError::DuplicateSource { switch: s, port: 0 });
        assert!(e.to_string().contains("already has a source"), "{e}");
    }

    #[test]
    fn conflicting_route_is_a_typed_error() {
        let mut net = Network::new(0);
        let s = net.add_switch(2);
        net.add_route(s, FlowId(1), OutputPort::new(0)).unwrap();
        // Re-adding the same route is idempotent...
        net.add_route(s, FlowId(1), OutputPort::new(0)).unwrap();
        // ...but a different one conflicts.
        let e = net.add_route(s, FlowId(1), OutputPort::new(1)).unwrap_err();
        assert_eq!(
            e,
            TopologyError::ConflictingRoute {
                flow: FlowId(1),
                switch: s
            }
        );
        assert!(e.to_string().contains("re-routed"), "{e}");
    }

    #[test]
    fn builder_errors_are_typed() {
        let mut net = Network::new(0);
        let s = net.add_switch(2);
        assert_eq!(
            net.connect(s, OutputPort::new(0), s, InputPort::new(1), 0),
            Err(TopologyError::BadLatency)
        );
        assert_eq!(
            net.connect(s, OutputPort::new(0), SwitchId(9), InputPort::new(0), 1),
            Err(TopologyError::UnknownSwitch {
                switch: SwitchId(9)
            })
        );
        assert_eq!(
            net.add_route(s, FlowId(1), OutputPort::new(7)),
            Err(TopologyError::PortOutOfRange {
                switch: s,
                port: 7,
                ports: 2
            })
        );
        assert_eq!(
            net.add_source(s, InputPort::new(0), vec![], 1.0),
            Err(TopologyError::NoFlows)
        );
        assert_eq!(
            net.add_source(s, InputPort::new(0), vec![FlowId(1)], 1.5),
            Err(TopologyError::InvalidRate)
        );
        assert_eq!(
            net.add_source(s, InputPort::new(0), vec![FlowId(1)], f64::NAN),
            Err(TopologyError::InvalidRate)
        );
    }
}

#[cfg(test)]
mod topology_tests {
    use super::*;

    #[test]
    fn validate_accepts_complete_configurations() {
        let mut net = Network::new(1);
        let a = net.add_switch(2);
        let b = net.add_switch(2);
        net.connect(a, OutputPort::new(1), b, InputPort::new(0), 1).unwrap();
        let f = FlowId(4);
        net.add_route(a, f, OutputPort::new(1)).unwrap();
        net.add_route(b, f, OutputPort::new(0)).unwrap();
        net.add_source(a, InputPort::new(0), vec![f], 1.0).unwrap();
        net.validate().unwrap();
        let path = net.path_of(f, a).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path[0], (a, OutputPort::new(1)));
        assert_eq!(path[1], (b, OutputPort::new(0)));
    }

    #[test]
    fn validate_reports_missing_downstream_route() {
        let mut net = Network::new(1);
        let a = net.add_switch(2);
        let b = net.add_switch(2);
        net.connect(a, OutputPort::new(1), b, InputPort::new(0), 1).unwrap();
        let f = FlowId(4);
        net.add_route(a, f, OutputPort::new(1)).unwrap(); // but not at b
        net.add_source(a, InputPort::new(0), vec![f], 1.0).unwrap();
        let e = net.validate().unwrap_err();
        assert_eq!(e, TopologyError::MissingRoute { flow: f, switch: b });
        assert!(e.to_string().contains("no route"), "{e}");
    }

    #[test]
    fn validate_detects_routing_loops() {
        let mut net = Network::new(1);
        let a = net.add_switch(2);
        let b = net.add_switch(2);
        net.connect(a, OutputPort::new(0), b, InputPort::new(0), 1).unwrap();
        net.connect(b, OutputPort::new(0), a, InputPort::new(1), 1).unwrap();
        let f = FlowId(9);
        net.add_route(a, f, OutputPort::new(0)).unwrap();
        net.add_route(b, f, OutputPort::new(0)).unwrap();
        net.add_source(a, InputPort::new(0), vec![f], 1.0).unwrap();
        let e = net.validate().unwrap_err();
        assert!(matches!(e, TopologyError::RoutingLoop { .. }), "{e}");
    }

    #[test]
    fn path_of_unknown_switch_errors() {
        let net = Network::new(1);
        let e = net.path_of(FlowId(1), SwitchId(3)).unwrap_err();
        assert!(matches!(e, TopologyError::UnknownSwitch { .. }));
        assert!(e.to_string().contains("does not exist"));
    }
}

#[cfg(test)]
mod routing_tests {
    use super::*;

    /// A 2x2 grid of 4-port switches, links in both row/column directions.
    fn grid() -> (Network, [SwitchId; 4]) {
        let mut net = Network::new(3);
        let s: Vec<SwitchId> = (0..4).map(|_| net.add_switch(4)).collect();
        // s0 - s1
        // |     |
        // s2 - s3     (one-directional links, port 2 = east, port 3 = south)
        net.connect(s[0], OutputPort::new(2), s[1], InputPort::new(0), 1).unwrap();
        net.connect(s[0], OutputPort::new(3), s[2], InputPort::new(0), 1).unwrap();
        net.connect(s[1], OutputPort::new(3), s[3], InputPort::new(1), 1).unwrap();
        net.connect(s[2], OutputPort::new(2), s[3], InputPort::new(2), 1).unwrap();
        (net, [s[0], s[1], s[2], s[3]])
    }

    #[test]
    fn shortest_route_is_installed_and_works() {
        let (mut net, s) = grid();
        let f = FlowId(5);
        net.route_shortest(f, s[0], s[3], OutputPort::new(1)).unwrap();
        let path = net.path_of(f, s[0]).unwrap();
        // Two hops to cross the grid plus the delivery hop = 3 entries.
        assert_eq!(path.len(), 3);
        assert_eq!(path[0].0, s[0]);
        assert_eq!(path[2], (s[3], OutputPort::new(1)));
        net.add_source(s[0], InputPort::new(1), vec![f], 1.0).unwrap();
        net.validate().unwrap();
        net.run(100);
        assert!(net.delivered(f) > 90);
    }

    #[test]
    fn trivial_route_at_the_exit_switch() {
        let (mut net, s) = grid();
        let f = FlowId(6);
        net.route_shortest(f, s[3], s[3], OutputPort::new(0)).unwrap();
        let path = net.path_of(f, s[3]).unwrap();
        assert_eq!(path, vec![(s[3], OutputPort::new(0))]);
    }

    #[test]
    fn unreachable_exit_is_reported() {
        let (mut net, s) = grid();
        // Links only go east/south: s3 cannot reach s0.
        let e = net
            .route_shortest(FlowId(7), s[3], s[0], OutputPort::new(0))
            .unwrap_err();
        assert_eq!(e, TopologyError::Unreachable { from: s[3], to: s[0] });
        assert!(e.to_string().contains("no link path"));
        // Nothing was installed.
        assert!(matches!(
            net.path_of(FlowId(7), s[3]),
            Err(TopologyError::MissingRoute { .. })
        ));
    }

    #[test]
    fn shortest_route_prefers_fewest_hops() {
        let (mut net, s) = grid();
        // s0 -> s1 is direct (1 link); the alternative via s2/s3 is longer.
        let f = FlowId(8);
        net.route_shortest(f, s[0], s[1], OutputPort::new(1)).unwrap();
        let path = net.path_of(f, s[0]).unwrap();
        assert_eq!(path.len(), 2, "{path:?}");
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use an2_sim::fault::FaultEvent;

    /// Three switches in a chain with a redundant diagonal:
    /// s0 --(out 2)--> s1 --(out 2)--> s2 --(out 0)--> sink
    /// plus s0 --(out 3, latency 3)--> s2 (input 1) as backup.
    fn chain_with_backup() -> (Network, [SwitchId; 3], FlowId) {
        let mut net = Network::new(0xFA);
        let s0 = net.add_switch(4);
        let s1 = net.add_switch(4);
        let s2 = net.add_switch(4);
        net.connect(s0, OutputPort::new(2), s1, InputPort::new(0), 1).unwrap();
        net.connect(s1, OutputPort::new(2), s2, InputPort::new(0), 1).unwrap();
        net.connect(s0, OutputPort::new(3), s2, InputPort::new(1), 3).unwrap();
        let f = FlowId(42);
        for sw in [s0, s1] {
            net.add_route(sw, f, OutputPort::new(2)).unwrap();
        }
        net.add_route(s2, f, OutputPort::new(0)).unwrap();
        net.add_source(s0, InputPort::new(2), vec![f], 1.0).unwrap();
        net.validate().unwrap();
        (net, [s0, s1, s2], f)
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let (mut plain, _, f) = chain_with_backup();
        let (mut faulted, _, _) = chain_with_backup();
        faulted.set_fault_plan(FaultPlan::new());
        plain.run(500);
        faulted.run(500);
        assert_eq!(plain.delivered(f), faulted.delivered(f));
        assert_eq!(plain.queued(), faulted.queued());
        assert_eq!(faulted.fault_log().digest(), FaultLog::new().digest());
    }

    #[test]
    fn link_down_reroutes_over_the_backup_path() {
        let (mut net, [s0, _, _], f) = chain_with_backup();
        net.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
            slot: 100,
            kind: FaultKind::LinkDown { switch: 0, output: 2 },
        }]));
        net.run(400);
        // The flow now crosses the diagonal.
        let path = net.path_of(f, s0).unwrap();
        assert_eq!(path[0], (s0, OutputPort::new(3)));
        assert_eq!(net.link_is_up(s0, OutputPort::new(2)), Some(false));
        let log = net.fault_log();
        assert_eq!(log.reroutes().len(), 1);
        assert_eq!(log.reroutes()[0].flow, f.0);
        // Service continued: well over half the slots delivered.
        assert!(net.delivered(f) > 300, "delivered {}", net.delivered(f));
        assert!(!net.flow_degraded(f));
    }

    #[test]
    fn link_down_without_backup_strands_then_link_up_repairs() {
        let mut net = Network::new(7);
        let a = net.add_switch(2);
        let b = net.add_switch(2);
        net.connect(a, OutputPort::new(1), b, InputPort::new(0), 1).unwrap();
        let f = FlowId(5);
        net.add_route(a, f, OutputPort::new(1)).unwrap();
        net.add_route(b, f, OutputPort::new(0)).unwrap();
        net.add_source(a, InputPort::new(0), vec![f], 1.0).unwrap();
        net.set_fault_plan(FaultPlan::from_events(vec![
            FaultEvent {
                slot: 50,
                kind: FaultKind::LinkDown { switch: 0, output: 1 },
            },
            FaultEvent {
                slot: 150,
                kind: FaultKind::LinkUp { switch: 0, output: 1 },
            },
        ]));
        net.run(100);
        let at_outage = net.delivered(f);
        // Stranded: injections become NoRoute drops.
        assert!(net
            .fault_log()
            .drops()
            .iter()
            .any(|d| d.cause == DropCause::NoRoute));
        net.run(200);
        // Repaired: deliveries resumed after slot 150.
        assert!(
            net.delivered(f) > at_outage + 100,
            "delivered {}",
            net.delivered(f)
        );
        assert_eq!(net.fault_log().reroutes().len(), 1);
        net.validate().unwrap();
    }

    #[test]
    fn in_flight_cells_on_a_dead_link_are_lost() {
        let mut net = Network::new(9);
        let a = net.add_switch(2);
        let b = net.add_switch(2);
        // Long latency so cells are in flight when the link dies.
        net.connect(a, OutputPort::new(1), b, InputPort::new(0), 10).unwrap();
        let f = FlowId(3);
        net.add_route(a, f, OutputPort::new(1)).unwrap();
        net.add_route(b, f, OutputPort::new(0)).unwrap();
        net.add_source(a, InputPort::new(0), vec![f], 1.0).unwrap();
        net.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
            slot: 20,
            kind: FaultKind::LinkDown { switch: 0, output: 1 },
        }]));
        net.run(40);
        let dead = net
            .fault_log()
            .drops()
            .iter()
            .filter(|d| d.cause == DropCause::DeadLink)
            .count();
        // ~10 cells were mid-link at the failure.
        assert!(dead >= 8, "only {dead} dead-link drops");
    }

    #[test]
    fn cell_faults_and_port_faults_are_counted() {
        let mut net = Network::new(4);
        let s = net.add_switch(2);
        let f = FlowId(1);
        net.add_route(s, f, OutputPort::new(1)).unwrap();
        net.add_source(s, InputPort::new(0), vec![f], 1.0).unwrap();
        net.set_fault_plan(FaultPlan::from_events(vec![
            FaultEvent {
                slot: 5,
                kind: FaultKind::CellDrop { switch: 0, input: 0 },
            },
            FaultEvent {
                slot: 6,
                kind: FaultKind::CellCorrupt { switch: 0, input: 0 },
            },
            FaultEvent {
                slot: 10,
                kind: FaultKind::PortFail {
                    switch: 0,
                    side: PortSide::Output,
                    port: 1,
                },
            },
            FaultEvent {
                slot: 20,
                kind: FaultKind::PortRecover {
                    switch: 0,
                    side: PortSide::Output,
                    port: 1,
                },
            },
        ]));
        net.run(60);
        let log = net.fault_log();
        assert_eq!(log.applied().len(), 4);
        assert!(log.drops().iter().any(|d| d.cause == DropCause::Injected));
        assert!(log.drops().iter().any(|d| d.cause == DropCause::Corrupted));
        // The port outage paused delivery but everything still flows after.
        assert!(net.delivered(f) >= 40, "delivered {}", net.delivered(f));
    }

    #[test]
    fn clock_drift_pauses_scheduling_then_drains() {
        let mut net = Network::new(11);
        let s = net.add_switch(2);
        let f = FlowId(2);
        net.add_route(s, f, OutputPort::new(0)).unwrap();
        net.add_source(s, InputPort::new(0), vec![f], 1.0).unwrap();
        net.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
            slot: 10,
            kind: FaultKind::ClockDrift { switch: 0, slots: 20 },
        }]));
        net.run(30);
        // Arrivals kept buffering during the excursion.
        assert!(net.queued() >= 19, "queued {}", net.queued());
        let frozen = net.delivered(f);
        net.run(60);
        assert!(net.delivered(f) > frozen + 40);
    }

    #[test]
    fn finite_buffers_shed_overload_gracefully() {
        let mut net = Network::new(13);
        let s = net.add_switch(2);
        let (f1, f2) = (FlowId(1), FlowId(2));
        // 2 cells/slot offered into one output serving 1 cell/slot.
        net.add_route(s, f1, OutputPort::new(0)).unwrap();
        net.add_route(s, f2, OutputPort::new(0)).unwrap();
        net.add_source(s, InputPort::new(0), vec![f1], 1.0).unwrap();
        net.add_source(s, InputPort::new(1), vec![f2], 1.0).unwrap();
        net.set_buffer_capacity(s, Some(4)).unwrap();
        net.run(200);
        // Queues stay bounded; the excess shows up as BufferFull drops.
        assert!(net.queued() <= 8, "queued {}", net.queued());
        let log = net.fault_log();
        assert!(log.cells_dropped() > 50);
        assert!(log.drops().iter().all(|d| d.cause == DropCause::BufferFull));
        // The bottleneck still ran at full rate.
        assert!(net.delivered(f1) + net.delivered(f2) > 180);
    }

    #[test]
    fn cbr_reservation_follows_a_reroute() {
        let (mut net, [s0, s1, s2], f) = chain_with_backup();
        for sw in [s0, s1, s2] {
            net.enable_cbr(sw, 10).unwrap();
        }
        net.reserve_flow(f, 3).unwrap();
        assert!(net.cbr_schedule(s1).unwrap().verify());
        assert_eq!(
            net.cbr_schedule(s1)
                .unwrap()
                .scheduled_cells(InputPort::new(0), OutputPort::new(2)),
            3
        );
        net.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
            slot: 50,
            kind: FaultKind::LinkDown { switch: 0, output: 2 },
        }]));
        net.run(100);
        // The reservation moved: s1 is off the path, s0 now reserves the
        // diagonal, s2 the landing input.
        assert_eq!(
            net.cbr_schedule(s1)
                .unwrap()
                .scheduled_cells(InputPort::new(0), OutputPort::new(2)),
            0
        );
        assert_eq!(
            net.cbr_schedule(s0)
                .unwrap()
                .scheduled_cells(InputPort::new(2), OutputPort::new(3)),
            3
        );
        assert_eq!(
            net.cbr_schedule(s2)
                .unwrap()
                .scheduled_cells(InputPort::new(1), OutputPort::new(0)),
            3
        );
        let log = net.fault_log();
        assert_eq!(log.reservations().len(), 1);
        assert!(log.reservations()[0].ok);
        assert!(!net.flow_degraded(f));
        assert!(net.cbr_schedule(s0).unwrap().verify());
        assert!(net.cbr_schedule(s2).unwrap().verify());
    }

    #[test]
    fn exhausted_rereservation_degrades_to_best_effort() {
        let (mut net, [s0, s1, s2], f) = chain_with_backup();
        // Tiny frames: after the reroute the diagonal hop cannot host the
        // reservation because a competing flow holds all its slots.
        for sw in [s0, s1, s2] {
            net.enable_cbr(sw, 2).unwrap();
        }
        net.reserve_flow(f, 2).unwrap();
        // A blocker flow saturates the diagonal's frame capacity.
        let blocker = FlowId(77);
        net.add_route(s0, blocker, OutputPort::new(3)).unwrap();
        net.add_route(s2, blocker, OutputPort::new(1)).unwrap();
        net.add_source(s0, InputPort::new(1), vec![blocker], 0.1).unwrap();
        net.reserve_flow(blocker, 2).unwrap();
        net.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
            slot: 10,
            kind: FaultKind::LinkDown { switch: 0, output: 2 },
        }]));
        net.run(200);
        let log = net.fault_log();
        // All attempts failed with exponential backoff, then degradation.
        assert_eq!(log.reservations().len(), MAX_RESERVE_ATTEMPTS as usize);
        assert!(log.reservations().iter().all(|r| !r.ok));
        let slots: Vec<u64> = log.reservations().iter().map(|r| r.slot).collect();
        for w in slots.windows(2) {
            assert!(w[1] > w[0], "retries must be spread out: {slots:?}");
        }
        assert_eq!(log.degraded(), &[f.0]);
        assert!(net.flow_degraded(f));
        // Best-effort service continues regardless.
        let before = net.delivered(f);
        net.run(100);
        assert!(net.delivered(f) > before + 50);
    }
}
