//! A multi-switch, arbitrary-topology datagram network simulator.
//!
//! The AN2 network is "a collection of switches, links, and host network
//! controllers" in any topology (§2); routing is per-flow and static. This
//! module simulates such a network slot-synchronously: hosts inject cells,
//! each switch runs its own scheduler over its random-access input buffers
//! (PIM by default), and departed cells propagate over links with latency
//! toward per-flow sinks.
//!
//! This substrate powers the Figure 9 fairness experiment (flows merging
//! through a chain of switches toward one bottleneck link) and is general
//! enough for arbitrary topologies.

use an2_sched::rng::SelectRng as _;
use an2_sched::{InputPort, OutputPort, Pim, Scheduler};
use an2_sim::cell::{Cell, FlowId};
use an2_sim::voq::{ServiceDiscipline, VoqBuffers};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Identifier of a switch within a [`Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(usize);

/// A configuration problem detected by [`Network::validate`] or
/// [`Network::path_of`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// A switch id does not exist in this network.
    UnknownSwitch {
        /// The offending switch id.
        switch: SwitchId,
    },
    /// A flow reaches a switch that has no route entry for it.
    MissingRoute {
        /// The flow without a route.
        flow: FlowId,
        /// The switch where the route is missing.
        switch: SwitchId,
    },
    /// A flow's route revisits a switch.
    RoutingLoop {
        /// The looping flow.
        flow: FlowId,
        /// The first switch revisited.
        switch: SwitchId,
    },
    /// No link path exists between two switches.
    Unreachable {
        /// The starting switch.
        from: SwitchId,
        /// The unreachable switch.
        to: SwitchId,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownSwitch { switch } => write!(f, "switch {switch} does not exist"),
            Self::MissingRoute { flow, switch } => {
                write!(f, "flow {flow} has no route at {switch}")
            }
            Self::RoutingLoop { flow, switch } => {
                write!(f, "flow {flow} loops back to {switch}")
            }
            Self::Unreachable { from, to } => {
                write!(f, "no link path from {from} to {to}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

/// Where a switch output port leads.
#[derive(Clone, Copy, Debug)]
enum PortTarget {
    /// A link to another switch's input port, with latency in slots.
    Link {
        to: SwitchId,
        port: InputPort,
        latency: u64,
    },
    /// Delivery to the destination host (cells are counted per flow).
    Sink,
}

struct SwitchNode {
    voq: VoqBuffers,
    scheduler: Box<dyn Scheduler>,
    /// Flow → output port at this switch.
    routes: HashMap<FlowId, OutputPort>,
    /// Wiring of output ports; unwired ports are sinks.
    targets: Vec<PortTarget>,
}

impl fmt::Debug for SwitchNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwitchNode")
            .field("n", &self.voq.n())
            .field("scheduler", &self.scheduler.name())
            .field("routes", &self.routes.len())
            .finish()
    }
}

/// A traffic source attached to one switch input port.
#[derive(Clone, Debug)]
struct Source {
    switch: SwitchId,
    port: InputPort,
    /// Flows injected round-robin by this source.
    flows: Vec<FlowId>,
    next_flow: usize,
    /// Cells offered per slot (1.0 = saturating).
    rate: f64,
    rng: an2_sched::rng::Xoshiro256,
}

/// A slot-synchronous multi-switch network.
///
/// # Examples
///
/// Two switches in a row; a flow crosses both:
///
/// ```
/// use an2_net::netsim::Network;
/// use an2_sched::{InputPort, OutputPort};
/// use an2_sim::cell::FlowId;
///
/// let mut net = Network::new(7);
/// let a = net.add_switch(2);
/// let b = net.add_switch(2);
/// net.connect(a, OutputPort::new(1), b, InputPort::new(0), 1);
/// let flow = FlowId(1);
/// net.add_route(a, flow, OutputPort::new(1));
/// net.add_route(b, flow, OutputPort::new(1));
/// net.add_source(a, InputPort::new(0), vec![flow], 1.0);
/// net.run(100);
/// assert!(net.delivered(flow) > 90);
/// ```
pub struct Network {
    switches: Vec<SwitchNode>,
    sources: Vec<Source>,
    /// Cells in flight on links, keyed by delivery slot.
    in_flight: BTreeMap<u64, Vec<(SwitchId, InputPort, FlowId, u64)>>,
    /// Cells delivered end-to-end, per flow.
    delivered: HashMap<FlowId, u64>,
    /// Sum of end-to-end latencies (slots), per flow.
    latency_sum: HashMap<FlowId, u64>,
    slot: u64,
    seed: u64,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("switches", &self.switches.len())
            .field("sources", &self.sources.len())
            .field("slot", &self.slot)
            .finish()
    }
}

impl Network {
    /// Creates an empty network; `seed` drives every random choice.
    pub fn new(seed: u64) -> Self {
        Self {
            switches: Vec::new(),
            sources: Vec::new(),
            in_flight: BTreeMap::new(),
            delivered: HashMap::new(),
            latency_sum: HashMap::new(),
            slot: 0,
            seed,
        }
    }

    /// Adds an `n`-port switch scheduled by PIM with the AN2 default of
    /// four iterations.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > MAX_PORTS`.
    pub fn add_switch(&mut self, n: usize) -> SwitchId {
        let id = SwitchId(self.switches.len());
        let seed = self.seed ^ (id.0 as u64).wrapping_mul(0xA24B_AED4_963E_E407);
        self.add_switch_with(
            n,
            Box::new(Pim::new(n, seed)),
            ServiceDiscipline::RoundRobin,
        )
    }

    /// Adds an `n`-port switch with an explicit scheduler and flow-service
    /// discipline.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > MAX_PORTS`.
    pub fn add_switch_with(
        &mut self,
        n: usize,
        scheduler: Box<dyn Scheduler>,
        discipline: ServiceDiscipline,
    ) -> SwitchId {
        let id = SwitchId(self.switches.len());
        self.switches.push(SwitchNode {
            voq: VoqBuffers::with_discipline(n, discipline),
            scheduler,
            routes: HashMap::new(),
            targets: vec![PortTarget::Sink; n],
        });
        id
    }

    /// Wires output `out` of switch `from` to input `inp` of switch `to`
    /// with the given link latency in slots (minimum 1: a cell departs one
    /// slot and is eligible downstream the next).
    ///
    /// # Panics
    ///
    /// Panics if either switch id or port is out of range, or `latency == 0`.
    pub fn connect(
        &mut self,
        from: SwitchId,
        out: OutputPort,
        to: SwitchId,
        inp: InputPort,
        latency: u64,
    ) {
        assert!(latency >= 1, "link latency must be at least one slot");
        assert!(to.0 < self.switches.len(), "unknown switch {to}");
        assert!(
            inp.index() < self.switches[to.0].voq.n(),
            "input {inp} outside {to}"
        );
        let node = self
            .switches
            .get_mut(from.0)
            .unwrap_or_else(|| panic!("unknown switch {from}"));
        assert!(
            out.index() < node.voq.n(),
            "output {out} outside {from}"
        );
        node.targets[out.index()] = PortTarget::Link {
            to,
            port: inp,
            latency,
        };
    }

    /// Declares that at switch `sw`, cells of `flow` leave via output
    /// `out`. Every switch a flow traverses needs a route entry ("a
    /// routing table in each switch ... determines the output port for
    /// each flow").
    ///
    /// # Panics
    ///
    /// Panics if the switch or port is out of range, or the flow already
    /// has a different route at this switch.
    pub fn add_route(&mut self, sw: SwitchId, flow: FlowId, out: OutputPort) {
        let node = self
            .switches
            .get_mut(sw.0)
            .unwrap_or_else(|| panic!("unknown switch {sw}"));
        assert!(out.index() < node.voq.n(), "output {out} outside {sw}");
        let prev = node.routes.insert(flow, out);
        assert!(
            prev.is_none_or(|p| p == out),
            "flow {flow} re-routed at {sw}; routes are static"
        );
    }

    /// Attaches a host source to input `port` of switch `sw`, injecting the
    /// given flows round-robin at `rate` cells per slot (1.0 = the link is
    /// saturated).
    ///
    /// # Panics
    ///
    /// Panics if the switch or port is out of range, `flows` is empty,
    /// `rate` is outside `[0, 1]`, or the port already has a source.
    pub fn add_source(&mut self, sw: SwitchId, port: InputPort, flows: Vec<FlowId>, rate: f64) {
        assert!(sw.0 < self.switches.len(), "unknown switch {sw}");
        assert!(
            port.index() < self.switches[sw.0].voq.n(),
            "input {port} outside {sw}"
        );
        assert!(!flows.is_empty(), "a source must inject at least one flow");
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        assert!(
            !self
                .sources
                .iter()
                .any(|s| s.switch == sw && s.port == port),
            "input {port} of {sw} already has a source"
        );
        let seed = self.seed
            ^ (self.sources.len() as u64 + 1).wrapping_mul(0x9FB2_1C65_1E98_DF25);
        self.sources.push(Source {
            switch: sw,
            port,
            flows,
            next_flow: 0,
            rate,
            rng: an2_sched::rng::Xoshiro256::seed_from(seed),
        });
    }

    /// The current slot number.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Cells delivered end-to-end for `flow` so far.
    pub fn delivered(&self, flow: FlowId) -> u64 {
        self.delivered.get(&flow).copied().unwrap_or(0)
    }

    /// Mean end-to-end latency (slots) of delivered cells of `flow`, if any
    /// were delivered.
    pub fn mean_latency(&self, flow: FlowId) -> Option<f64> {
        let n = self.delivered(flow);
        (n > 0).then(|| *self.latency_sum.get(&flow).unwrap_or(&0) as f64 / n as f64)
    }

    /// Total cells buffered across all switches.
    pub fn queued(&self) -> usize {
        self.switches.iter().map(|s| s.voq.len()).sum()
    }

    /// Resets the delivery counters (warmup truncation); queues and
    /// scheduler state are preserved.
    pub fn reset_counters(&mut self) {
        self.delivered.clear();
        self.latency_sum.clear();
    }

    /// Advances the network by `slots` time slots.
    pub fn run(&mut self, slots: u64) {
        for _ in 0..slots {
            self.step();
        }
    }

    /// Advances one slot: deliver in-flight link cells, inject from
    /// sources, schedule and forward at every switch.
    ///
    /// # Panics
    ///
    /// Panics if a cell reaches a switch with no route for its flow.
    pub fn step(&mut self) {
        let now = self.slot;
        // 1. Link deliveries scheduled for this slot enter downstream VOQs.
        if let Some(batch) = self.in_flight.remove(&now) {
            for (sw, port, flow, injected_at) in batch {
                self.enqueue(sw, port, flow, injected_at);
            }
        }
        // 2. Sources inject (at most one cell per input port per slot).
        for si in 0..self.sources.len() {
            let (go, sw, port, flow) = {
                let s = &mut self.sources[si];
                let go = s.rate >= 1.0 || s.rng.bernoulli(s.rate);
                let flow = s.flows[s.next_flow % s.flows.len()];
                if go {
                    s.next_flow = (s.next_flow + 1) % s.flows.len();
                }
                (go, s.switch, s.port, flow)
            };
            if go {
                self.enqueue(sw, port, flow, now);
            }
        }
        // 3. Every switch schedules and forwards independently ("there is
        //    no centralized scheduler").
        for sw_idx in 0..self.switches.len() {
            let matching = {
                let node = &mut self.switches[sw_idx];
                let requests = node.voq.requests();
                let matching = node.scheduler.schedule(requests);
                debug_assert!(matching.respects(requests));
                matching
            };
            for (i, j) in matching.pairs() {
                let cell = self.switches[sw_idx]
                    .voq
                    .pop(i, j)
                    .expect("scheduler contract: matched pairs have queued cells");
                match self.switches[sw_idx].targets[j.index()] {
                    PortTarget::Link { to, port, latency } => {
                        self.in_flight
                            .entry(now + latency)
                            .or_default()
                            .push((to, port, cell.flow, cell.arrival_slot));
                    }
                    PortTarget::Sink => {
                        *self.delivered.entry(cell.flow).or_insert(0) += 1;
                        *self.latency_sum.entry(cell.flow).or_insert(0) +=
                            now - cell.arrival_slot;
                    }
                }
            }
        }
        self.slot += 1;
    }

    /// Installs routes for `flow` along a minimum-hop link path from
    /// switch `entry` to switch `exit`, delivering there via `exit_port`
    /// (which should be a sink port). Ties between equal-length paths
    /// break deterministically by switch and port order.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Unreachable`] if no link path exists;
    /// no routes are installed in that case.
    ///
    /// # Panics
    ///
    /// Panics if a switch id or port is out of range, or if the flow
    /// already has a conflicting route on the chosen path (routes are
    /// static).
    pub fn route_shortest(
        &mut self,
        flow: FlowId,
        entry: SwitchId,
        exit: SwitchId,
        exit_port: OutputPort,
    ) -> Result<(), TopologyError> {
        assert!(entry.0 < self.switches.len(), "unknown switch {entry}");
        assert!(exit.0 < self.switches.len(), "unknown switch {exit}");
        // BFS over link edges.
        let mut prev: Vec<Option<(SwitchId, OutputPort)>> = vec![None; self.switches.len()];
        let mut seen = vec![false; self.switches.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[entry.0] = true;
        queue.push_back(entry);
        while let Some(here) = queue.pop_front() {
            if here == exit {
                break;
            }
            for (out, target) in self.switches[here.0].targets.iter().enumerate() {
                if let PortTarget::Link { to, .. } = target {
                    if !seen[to.0] {
                        seen[to.0] = true;
                        prev[to.0] = Some((here, OutputPort::new(out)));
                        queue.push_back(*to);
                    }
                }
            }
        }
        if !seen[exit.0] {
            return Err(TopologyError::Unreachable {
                from: entry,
                to: exit,
            });
        }
        // Reconstruct hops and install routes.
        let mut hops = vec![(exit, exit_port)];
        let mut cursor = exit;
        while cursor != entry {
            let (from, out) = prev[cursor.0].expect("BFS predecessor recorded");
            hops.push((from, out));
            cursor = from;
        }
        for (sw, out) in hops {
            self.add_route(sw, flow, out);
        }
        Ok(())
    }

    /// Traces the path a flow injected at switch `start` will follow:
    /// the sequence of `(switch, output port)` hops ending at a sink.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if a switch on the path lacks a route
    /// for the flow, or if the path loops.
    pub fn path_of(&self, flow: FlowId, start: SwitchId) -> Result<Vec<(SwitchId, OutputPort)>, TopologyError> {
        let mut path = Vec::new();
        let mut visited = std::collections::HashSet::new();
        let mut here = start;
        loop {
            if !visited.insert(here) {
                return Err(TopologyError::RoutingLoop { flow, switch: here });
            }
            let node = self
                .switches
                .get(here.0)
                .ok_or(TopologyError::UnknownSwitch { switch: here })?;
            let out = *node
                .routes
                .get(&flow)
                .ok_or(TopologyError::MissingRoute { flow, switch: here })?;
            path.push((here, out));
            match node.targets[out.index()] {
                PortTarget::Link { to, .. } => here = to,
                PortTarget::Sink => return Ok(path),
            }
        }
    }

    /// Validates the whole configuration: every source's flows have a
    /// complete, loop-free route from their entry switch to a sink.
    ///
    /// Call after building the topology; [`step`](Self::step) would
    /// otherwise surface the first violation as a panic mid-simulation.
    ///
    /// # Errors
    ///
    /// Returns the first [`TopologyError`] found.
    pub fn validate(&self) -> Result<(), TopologyError> {
        for s in &self.sources {
            for &flow in &s.flows {
                self.path_of(flow, s.switch)?;
            }
        }
        Ok(())
    }

    /// Pushes a cell of `flow` into switch `sw` at input `port`, looking up
    /// the flow's output there. `injected_at` is preserved end-to-end for
    /// latency accounting.
    fn enqueue(&mut self, sw: SwitchId, port: InputPort, flow: FlowId, injected_at: u64) {
        let node = &mut self.switches[sw.0];
        let out = *node
            .routes
            .get(&flow)
            .unwrap_or_else(|| panic!("flow {flow} has no route at {sw}"));
        node.voq.push(Cell {
            flow,
            input: port,
            output: out,
            arrival_slot: injected_at,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_switch_delivers() {
        let mut net = Network::new(1);
        let s = net.add_switch(4);
        let f = FlowId(9);
        net.add_route(s, f, OutputPort::new(2));
        net.add_source(s, InputPort::new(0), vec![f], 0.5);
        net.run(2000);
        let d = net.delivered(f);
        assert!((d as f64 - 1000.0).abs() < 100.0, "delivered {d}");
        assert!(net.mean_latency(f).unwrap() < 1.5);
    }

    #[test]
    fn two_hop_latency_includes_link() {
        let mut net = Network::new(2);
        let a = net.add_switch(2);
        let b = net.add_switch(2);
        net.connect(a, OutputPort::new(1), b, InputPort::new(0), 3);
        let f = FlowId(1);
        net.add_route(a, f, OutputPort::new(1));
        net.add_route(b, f, OutputPort::new(0));
        net.add_source(a, InputPort::new(0), vec![f], 1.0);
        net.run(50);
        assert!(net.delivered(f) > 40);
        // Uncontended path: latency = 3 (link) + 0 queueing at each hop.
        let lat = net.mean_latency(f).unwrap();
        assert!((lat - 3.0).abs() < 0.5, "latency {lat}");
    }

    #[test]
    fn contention_shares_a_bottleneck_roughly_evenly() {
        // Two saturated sources into one switch, both routed to output 3:
        // each should get about half the link.
        let mut net = Network::new(5);
        let s = net.add_switch(4);
        let (f1, f2) = (FlowId(1), FlowId(2));
        net.add_route(s, f1, OutputPort::new(3));
        net.add_route(s, f2, OutputPort::new(3));
        net.add_source(s, InputPort::new(0), vec![f1], 1.0);
        net.add_source(s, InputPort::new(1), vec![f2], 1.0);
        net.run(4000);
        net.reset_counters();
        net.run(10_000);
        let (d1, d2) = (net.delivered(f1) as f64, net.delivered(f2) as f64);
        assert!((d1 + d2 - 10_000.0).abs() < 100.0, "bottleneck not saturated");
        let share = d1 / (d1 + d2);
        assert!((share - 0.5).abs() < 0.05, "share {share}");
    }

    #[test]
    fn source_round_robins_flows() {
        let mut net = Network::new(3);
        let s = net.add_switch(2);
        let (f1, f2) = (FlowId(1), FlowId(2));
        net.add_route(s, f1, OutputPort::new(0));
        net.add_route(s, f2, OutputPort::new(1));
        net.add_source(s, InputPort::new(0), vec![f1, f2], 1.0);
        net.run(1000);
        let (d1, d2) = (net.delivered(f1), net.delivered(f2));
        assert!((d1 as i64 - d2 as i64).abs() <= 2, "{d1} vs {d2}");
    }

    #[test]
    fn queued_and_reset() {
        let mut net = Network::new(4);
        let s = net.add_switch(2);
        let (f1, f2) = (FlowId(1), FlowId(2));
        // Both flows to output 0: overload (2 cells/slot offered, 1 served).
        net.add_route(s, f1, OutputPort::new(0));
        net.add_route(s, f2, OutputPort::new(0));
        net.add_source(s, InputPort::new(0), vec![f1], 1.0);
        net.add_source(s, InputPort::new(1), vec![f2], 1.0);
        net.run(100);
        assert!(net.queued() > 80, "queued {}", net.queued());
        net.reset_counters();
        assert_eq!(net.delivered(f1), 0);
        assert_eq!(net.slot(), 100);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_route_panics() {
        let mut net = Network::new(0);
        let s = net.add_switch(2);
        net.add_source(s, InputPort::new(0), vec![FlowId(1)], 1.0);
        net.run(1);
    }

    #[test]
    #[should_panic(expected = "already has a source")]
    fn duplicate_source_panics() {
        let mut net = Network::new(0);
        let s = net.add_switch(2);
        net.add_route(s, FlowId(1), OutputPort::new(0));
        net.add_source(s, InputPort::new(0), vec![FlowId(1)], 1.0);
        net.add_source(s, InputPort::new(0), vec![FlowId(1)], 1.0);
    }

    #[test]
    #[should_panic(expected = "re-routed")]
    fn conflicting_route_panics() {
        let mut net = Network::new(0);
        let s = net.add_switch(2);
        net.add_route(s, FlowId(1), OutputPort::new(0));
        net.add_route(s, FlowId(1), OutputPort::new(1));
    }
}

#[cfg(test)]
mod topology_tests {
    use super::*;

    #[test]
    fn validate_accepts_complete_configurations() {
        let mut net = Network::new(1);
        let a = net.add_switch(2);
        let b = net.add_switch(2);
        net.connect(a, OutputPort::new(1), b, InputPort::new(0), 1);
        let f = FlowId(4);
        net.add_route(a, f, OutputPort::new(1));
        net.add_route(b, f, OutputPort::new(0));
        net.add_source(a, InputPort::new(0), vec![f], 1.0);
        net.validate().unwrap();
        let path = net.path_of(f, a).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path[0], (a, OutputPort::new(1)));
        assert_eq!(path[1], (b, OutputPort::new(0)));
    }

    #[test]
    fn validate_reports_missing_downstream_route() {
        let mut net = Network::new(1);
        let a = net.add_switch(2);
        let b = net.add_switch(2);
        net.connect(a, OutputPort::new(1), b, InputPort::new(0), 1);
        let f = FlowId(4);
        net.add_route(a, f, OutputPort::new(1)); // but not at b
        net.add_source(a, InputPort::new(0), vec![f], 1.0);
        let e = net.validate().unwrap_err();
        assert_eq!(e, TopologyError::MissingRoute { flow: f, switch: b });
        assert!(e.to_string().contains("no route"), "{e}");
    }

    #[test]
    fn validate_detects_routing_loops() {
        let mut net = Network::new(1);
        let a = net.add_switch(2);
        let b = net.add_switch(2);
        net.connect(a, OutputPort::new(0), b, InputPort::new(0), 1);
        net.connect(b, OutputPort::new(0), a, InputPort::new(1), 1);
        let f = FlowId(9);
        net.add_route(a, f, OutputPort::new(0));
        net.add_route(b, f, OutputPort::new(0));
        net.add_source(a, InputPort::new(0), vec![f], 1.0);
        let e = net.validate().unwrap_err();
        assert!(matches!(e, TopologyError::RoutingLoop { .. }), "{e}");
    }

    #[test]
    fn path_of_unknown_switch_errors() {
        let net = Network::new(1);
        let e = net.path_of(FlowId(1), SwitchId(3)).unwrap_err();
        assert!(matches!(e, TopologyError::UnknownSwitch { .. }));
        assert!(e.to_string().contains("does not exist"));
    }
}

#[cfg(test)]
mod routing_tests {
    use super::*;

    /// A 2x2 grid of 4-port switches, links in both row/column directions.
    fn grid() -> (Network, [SwitchId; 4]) {
        let mut net = Network::new(3);
        let s: Vec<SwitchId> = (0..4).map(|_| net.add_switch(4)).collect();
        // s0 - s1
        // |     |
        // s2 - s3     (one-directional links, port 2 = east, port 3 = south)
        net.connect(s[0], OutputPort::new(2), s[1], InputPort::new(0), 1);
        net.connect(s[0], OutputPort::new(3), s[2], InputPort::new(0), 1);
        net.connect(s[1], OutputPort::new(3), s[3], InputPort::new(1), 1);
        net.connect(s[2], OutputPort::new(2), s[3], InputPort::new(2), 1);
        (net, [s[0], s[1], s[2], s[3]])
    }

    #[test]
    fn shortest_route_is_installed_and_works() {
        let (mut net, s) = grid();
        let f = FlowId(5);
        net.route_shortest(f, s[0], s[3], OutputPort::new(1)).unwrap();
        let path = net.path_of(f, s[0]).unwrap();
        // Two hops to cross the grid plus the delivery hop = 3 entries.
        assert_eq!(path.len(), 3);
        assert_eq!(path[0].0, s[0]);
        assert_eq!(path[2], (s[3], OutputPort::new(1)));
        net.add_source(s[0], InputPort::new(1), vec![f], 1.0);
        net.validate().unwrap();
        net.run(100);
        assert!(net.delivered(f) > 90);
    }

    #[test]
    fn trivial_route_at_the_exit_switch() {
        let (mut net, s) = grid();
        let f = FlowId(6);
        net.route_shortest(f, s[3], s[3], OutputPort::new(0)).unwrap();
        let path = net.path_of(f, s[3]).unwrap();
        assert_eq!(path, vec![(s[3], OutputPort::new(0))]);
    }

    #[test]
    fn unreachable_exit_is_reported() {
        let (mut net, s) = grid();
        // Links only go east/south: s3 cannot reach s0.
        let e = net
            .route_shortest(FlowId(7), s[3], s[0], OutputPort::new(0))
            .unwrap_err();
        assert_eq!(e, TopologyError::Unreachable { from: s[3], to: s[0] });
        assert!(e.to_string().contains("no link path"));
        // Nothing was installed.
        assert!(matches!(
            net.path_of(FlowId(7), s[3]),
            Err(TopologyError::MissingRoute { .. })
        ));
    }

    #[test]
    fn shortest_route_prefers_fewest_hops() {
        let (mut net, s) = grid();
        // s0 -> s1 is direct (1 link); the alternative via s2/s3 is longer.
        let f = FlowId(8);
        net.route_shortest(f, s[0], s[1], OutputPort::new(1)).unwrap();
        let path = net.path_of(f, s[0]).unwrap();
        assert_eq!(path.len(), 2, "{path:?}");
    }
}
