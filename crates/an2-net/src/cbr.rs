//! End-to-end CBR guarantees under clock drift — §4 and Appendix B.
//!
//! A CBR flow reserves `k` cells per frame along a path of `p` switches.
//! Every node times its frames with its own (drifting) clock; the
//! controller's frame is padded with extra empty slots so that even the
//! fastest controller frame outlasts the slowest switch frame
//! (`F_c-min > F_s-max`). Under the paper's operating rules — at most `k`
//! cells of the flow per frame, FIFO order, no needless delays — Appendix B
//! proves two bounds that this module's simulation checks empirically:
//!
//! * **Latency** (Formula 3): the adjusted end-to-end latency of every cell
//!   is at most `2p(F_s-max + l)`.
//! * **Buffering** (Formula 5): the per-switch queue of the flow never
//!   exceeds `k` times
//!   `4 + ((F_s-max − F_s-min)/F_s-min)·(2 + ((2F_s-max + l)p + F_c-max)/(F_c-min − F_s-max))`.
//!
//! Because reserved flows are mutually independent ("each flow has its own
//! reserved buffer space and bandwidth, the behavior of each flow is
//! independent of the behavior of other flows"), a single flow on a chain
//! is the exact object of study.

use crate::clock::{ClockPolicy, FrameClock};
use std::fmt;

/// An inconsistency in a [`CbrChainConfig`], reported by
/// [`CbrChainConfig::validate`] before any simulation runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CbrConfigError {
    /// `hops == 0`: the path must contain at least one switch.
    NoHops,
    /// `cells_per_frame == 0`: reserve at least one cell per frame.
    NoCells,
    /// More cells reserved per frame than the frame has slots.
    TooManyCellsPerFrame {
        /// Requested cells per frame.
        cells: usize,
        /// Slots per switch frame.
        frame_slots: usize,
    },
    /// `switch_frame_slots == 0`: frames must contain slots.
    EmptyFrame,
    /// `slot_time` is not a positive finite number.
    BadSlotTime,
    /// `link_latency` is negative or not finite.
    BadLinkLatency,
    /// `frames == 0`: simulate at least one frame.
    NoFrames,
    /// The controller stuffing does not guarantee `F_c-min > F_s-max`.
    StuffingTooSmall {
        /// The configured stuffing.
        stuffing: usize,
        /// The minimum stuffing that would suffice
        /// ([`CbrChainConfig::min_stuffing`]).
        needed: usize,
    },
}

impl fmt::Display for CbrConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoHops => write!(f, "the path must contain at least one switch"),
            Self::NoCells => write!(f, "reserve at least one cell per frame"),
            Self::TooManyCellsPerFrame { cells, frame_slots } => write!(
                f,
                "cannot reserve more cells than a frame has slots ({cells} > {frame_slots})"
            ),
            Self::EmptyFrame => write!(f, "frames must contain slots"),
            Self::BadSlotTime => write!(f, "slot time must be positive"),
            Self::BadLinkLatency => write!(f, "link latency must be non-negative"),
            Self::NoFrames => write!(f, "simulate at least one frame"),
            Self::StuffingTooSmall { stuffing, needed } => write!(
                f,
                "controller stuffing too small: F_c-min must exceed F_s-max; \
                 {stuffing} stuffed slots given, need at least {needed}"
            ),
        }
    }
}

impl std::error::Error for CbrConfigError {}

/// Configuration of a single-flow CBR chain experiment.
#[derive(Clone, Debug)]
pub struct CbrChainConfig {
    /// Number of switches on the path (`p`); the controller is hop 0.
    pub hops: usize,
    /// Reserved cells per frame (`k`).
    pub cells_per_frame: usize,
    /// Nominal slots per *switch* frame (1000 in the AN2 prototype).
    pub switch_frame_slots: usize,
    /// Extra empty slots appended to each *controller* frame so that
    /// `F_c-min > F_s-max` even under worst-case clock skew.
    pub controller_stuffing: usize,
    /// Nominal wall-clock duration of one slot (any unit; 1.0 is fine).
    pub slot_time: f64,
    /// Fractional clock-rate tolerance (`ε`): frame durations vary over
    /// `nominal · (1 ± ε)`.
    pub tolerance: f64,
    /// Maximum link latency plus switch overhead (`l`), wall-clock.
    pub link_latency: f64,
    /// Controller frames to simulate.
    pub frames: u64,
}

impl CbrChainConfig {
    /// A small default: 4 hops, 1 cell/frame, 100-slot frames, ±0.5%
    /// clocks, enough stuffing, 200 frames.
    pub fn example() -> Self {
        let mut cfg = Self {
            hops: 4,
            cells_per_frame: 1,
            switch_frame_slots: 100,
            controller_stuffing: 0,
            slot_time: 1.0,
            tolerance: 5e-3,
            link_latency: 2.0,
            frames: 200,
        };
        cfg.controller_stuffing = cfg.min_stuffing();
        cfg
    }

    /// Nominal switch frame duration.
    fn switch_nominal(&self) -> f64 {
        self.switch_frame_slots as f64 * self.slot_time
    }

    /// Nominal controller frame duration (with stuffing).
    fn controller_nominal(&self) -> f64 {
        (self.switch_frame_slots + self.controller_stuffing) as f64 * self.slot_time
    }

    /// Slowest possible switch frame, `F_s-max`.
    pub fn f_s_max(&self) -> f64 {
        self.switch_nominal() * (1.0 + self.tolerance)
    }

    /// Fastest possible switch frame, `F_s-min`.
    pub fn f_s_min(&self) -> f64 {
        self.switch_nominal() * (1.0 - self.tolerance)
    }

    /// Slowest possible controller frame, `F_c-max`.
    pub fn f_c_max(&self) -> f64 {
        self.controller_nominal() * (1.0 + self.tolerance)
    }

    /// Fastest possible controller frame, `F_c-min`.
    pub fn f_c_min(&self) -> f64 {
        self.controller_nominal() * (1.0 - self.tolerance)
    }

    /// The smallest stuffing (extra controller slots) that guarantees
    /// `F_c-min > F_s-max`. The paper's rule for constraining controllers
    /// to be slower than the slowest downstream switch.
    pub fn min_stuffing(&self) -> usize {
        let f = self.switch_frame_slots as f64;
        let need = f * (1.0 + self.tolerance) / (1.0 - self.tolerance) - f;
        need.floor() as usize + 1
    }

    /// The Appendix B latency bound `2p(F_s-max + l)` (Formula 3).
    pub fn latency_bound(&self) -> f64 {
        2.0 * self.hops as f64 * (self.f_s_max() + self.link_latency)
    }

    /// The Appendix B per-switch buffer bound (Formula 5), in cells, for
    /// the whole flow (`k` classes of one cell per frame each).
    pub fn buffer_bound(&self) -> f64 {
        let skew = (self.f_s_max() - self.f_s_min()) / self.f_s_min();
        let chain = (2.0 * self.f_s_max() + self.link_latency) * self.hops as f64 + self.f_c_max();
        let per_class = 4.0 + skew * (2.0 + chain / (self.f_c_min() - self.f_s_max()));
        per_class * self.cells_per_frame as f64
    }

    /// Checks the configuration for internal consistency — in particular
    /// that the controller stuffing guarantees `F_c-min > F_s-max`.
    ///
    /// # Errors
    ///
    /// Returns the first [`CbrConfigError`] found.
    pub fn validate(&self) -> Result<(), CbrConfigError> {
        if self.hops < 1 {
            return Err(CbrConfigError::NoHops);
        }
        if self.switch_frame_slots < 1 {
            return Err(CbrConfigError::EmptyFrame);
        }
        if self.cells_per_frame < 1 {
            return Err(CbrConfigError::NoCells);
        }
        if self.cells_per_frame > self.switch_frame_slots {
            return Err(CbrConfigError::TooManyCellsPerFrame {
                cells: self.cells_per_frame,
                frame_slots: self.switch_frame_slots,
            });
        }
        if !(self.slot_time.is_finite() && self.slot_time > 0.0) {
            return Err(CbrConfigError::BadSlotTime);
        }
        if !(self.link_latency.is_finite() && self.link_latency >= 0.0) {
            return Err(CbrConfigError::BadLinkLatency);
        }
        if self.frames < 1 {
            return Err(CbrConfigError::NoFrames);
        }
        if self.f_c_min() <= self.f_s_max() {
            return Err(CbrConfigError::StuffingTooSmall {
                stuffing: self.controller_stuffing,
                needed: self.min_stuffing(),
            });
        }
        Ok(())
    }
}

/// Result of one CBR chain run.
#[derive(Clone, Debug)]
pub struct CbrChainReport {
    /// Cells delivered end-to-end.
    pub cells_delivered: u64,
    /// Largest adjusted latency observed, `max_i L(c_i, s_p)`.
    pub max_adjusted_latency: f64,
    /// The Formula 3 bound the observation must respect.
    pub latency_bound: f64,
    /// Peak queued cells at each switch (index 0 = first switch).
    pub peak_buffer: Vec<usize>,
    /// The Formula 5 bound the peaks must respect.
    pub buffer_bound: f64,
    /// Delivered long-run throughput in cells per wall-clock unit.
    pub throughput: f64,
}

impl CbrChainReport {
    /// `true` if every observation is within its Appendix B bound.
    pub fn within_bounds(&self) -> bool {
        self.max_adjusted_latency <= self.latency_bound + 1e-9
            && self
                .peak_buffer
                .iter()
                .all(|&b| (b as f64) <= self.buffer_bound + 1e-9)
    }
}

impl fmt::Display for CbrChainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delivered={} max_latency={:.2} (bound {:.2}) peak_buffers={:?} (bound {:.2})",
            self.cells_delivered,
            self.max_adjusted_latency,
            self.latency_bound,
            self.peak_buffer,
            self.buffer_bound
        )
    }
}

/// Simulates one always-backlogged CBR flow across a chain of switches
/// with independently drifting clocks and returns the observed latencies
/// and buffer peaks alongside their Appendix B bounds.
///
/// `controller_policy` drives the controller's clock; `switch_policy` is
/// instantiated (with distinct seeds) at every switch.
///
/// # Errors
///
/// Returns a [`CbrConfigError`] if the configuration is inconsistent — in
/// particular if the controller stuffing does not guarantee
/// `F_c-min > F_s-max` (see [`CbrChainConfig::min_stuffing`]).
///
/// # Examples
///
/// ```
/// use an2_net::cbr::{simulate_cbr_chain, CbrChainConfig};
/// use an2_net::clock::ClockPolicy;
///
/// let cfg = CbrChainConfig::example();
/// let report = simulate_cbr_chain(
///     &cfg,
///     ClockPolicy::Random,
///     ClockPolicy::SlowThenFast { slow_frames: 20, fast_frames: 20 },
///     42,
/// ).unwrap();
/// assert!(report.within_bounds());
/// ```
pub fn simulate_cbr_chain(
    cfg: &CbrChainConfig,
    controller_policy: ClockPolicy,
    switch_policy: ClockPolicy,
    seed: u64,
) -> Result<CbrChainReport, CbrConfigError> {
    cfg.validate()?;
    let k = cfg.cells_per_frame;
    let total_cells = cfg.frames as usize * k;

    // Controller departures: k cells at the end of each controller frame.
    let mut ctrl_clock = FrameClock::new(
        cfg.controller_nominal(),
        cfg.tolerance,
        controller_policy,
        seed,
    );
    let mut dep_prev: Vec<f64> = Vec::with_capacity(total_cells);
    let mut t = 0.0;
    for _ in 0..cfg.frames {
        t += ctrl_clock.next_frame();
        for _ in 0..k {
            dep_prev.push(t);
        }
    }
    let controller_end = t;

    let mut peak_buffer = Vec::with_capacity(cfg.hops);
    let mut max_adjusted = 0.0f64;
    let dep_ctrl = dep_prev.clone();

    for hop in 1..=cfg.hops {
        // Arrivals at this switch.
        let arrivals: Vec<f64> = dep_prev.iter().map(|d| d + cfg.link_latency).collect();
        let mut clock = FrameClock::new(
            cfg.switch_nominal(),
            cfg.tolerance,
            switch_policy.clone(),
            seed ^ (hop as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        // Process frames until every cell departs. "If a cell has arrived
        // ... at the beginning of a frame, then either that cell or an
        // earlier queued cell from the same flow is forwarded during the
        // frame" — with at most k per frame, FIFO.
        let mut dep: Vec<f64> = Vec::with_capacity(total_cells);
        let mut frame_start = 0.0f64;
        let mut next_cell = 0usize; // first not-yet-departed cell
        let mut peak = 0usize;
        while next_cell < total_cells {
            let frame_end = frame_start + clock.next_frame();
            // Cells eligible at the start of this frame.
            let mut sent = 0;
            while sent < k
                && next_cell < total_cells
                && arrivals[next_cell] <= frame_start
            {
                dep.push(frame_end);
                next_cell += 1;
                sent += 1;
            }
            // Peak occupancy within this frame: cells arrived by frame end
            // minus cells departed by frame end. (Departures are counted at
            // frame end — the conservative accounting.)
            let arrived_by_end = arrivals.partition_point(|&a| a <= frame_end);
            peak = peak.max(arrived_by_end - next_cell + sent);
            frame_start = frame_end;
        }
        peak_buffer.push(peak);
        for (i, d) in dep.iter().enumerate() {
            let adj = d - dep_ctrl[i];
            max_adjusted = max_adjusted.max(adj);
        }
        dep_prev = dep;
    }

    let last = *dep_prev.last().expect("at least one cell simulated");
    Ok(CbrChainReport {
        cells_delivered: total_cells as u64,
        max_adjusted_latency: max_adjusted,
        latency_bound: cfg.latency_bound(),
        peak_buffer,
        buffer_bound: cfg.buffer_bound(),
        throughput: total_cells as f64 / last.max(controller_end),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> CbrChainConfig {
        let mut cfg = CbrChainConfig {
            hops: 5,
            cells_per_frame: 1,
            switch_frame_slots: 100,
            controller_stuffing: 0,
            slot_time: 1.0,
            tolerance: 1e-2,
            link_latency: 3.0,
            frames: 400,
        };
        cfg.controller_stuffing = cfg.min_stuffing();
        cfg
    }

    #[test]
    fn min_stuffing_guarantees_ordering() {
        for slots in [10usize, 100, 1000] {
            for tol in [1e-4, 1e-3, 1e-2, 0.05] {
                let mut cfg = base_cfg();
                cfg.switch_frame_slots = slots;
                cfg.tolerance = tol;
                cfg.controller_stuffing = cfg.min_stuffing();
                assert!(
                    cfg.f_c_min() > cfg.f_s_max(),
                    "slots={slots} tol={tol}: {} !> {}",
                    cfg.f_c_min(),
                    cfg.f_s_max()
                );
                // And one less slot would not suffice.
                if cfg.controller_stuffing > 0 {
                    cfg.controller_stuffing -= 1;
                    assert!(
                        cfg.f_c_min() <= cfg.f_s_max(),
                        "min_stuffing not minimal for slots={slots} tol={tol}"
                    );
                }
            }
        }
    }

    #[test]
    fn bounds_hold_under_constant_clocks() {
        let cfg = base_cfg();
        for frac in [0.0, 0.5, 1.0] {
            let r = simulate_cbr_chain(
                &cfg,
                ClockPolicy::Constant(frac),
                ClockPolicy::Constant(1.0 - frac),
                7,
            )
            .unwrap();
            assert!(r.within_bounds(), "frac {frac}: {r}");
            assert_eq!(r.cells_delivered, 400);
        }
    }

    #[test]
    fn bounds_hold_under_random_clocks() {
        let cfg = base_cfg();
        for seed in 0..10 {
            let r =
                simulate_cbr_chain(&cfg, ClockPolicy::Random, ClockPolicy::Random, seed).unwrap();
            assert!(r.within_bounds(), "seed {seed}: {r}");
        }
    }

    #[test]
    fn bounds_hold_under_adversarial_clocks() {
        // The slow-then-fast adversary of Appendix B: backlogs build and
        // dump, but the bounds still hold.
        let cfg = base_cfg();
        for (slow, fast) in [(10, 10), (50, 50), (100, 10), (1, 100)] {
            let r = simulate_cbr_chain(
                &cfg,
                ClockPolicy::SlowThenFast {
                    slow_frames: slow,
                    fast_frames: fast,
                },
                ClockPolicy::SlowThenFast {
                    slow_frames: fast,
                    fast_frames: slow,
                },
                99,
            )
            .unwrap();
            assert!(r.within_bounds(), "cycle ({slow},{fast}): {r}");
        }
    }

    #[test]
    fn bounds_scale_with_cells_per_frame() {
        let mut cfg = base_cfg();
        cfg.cells_per_frame = 5;
        let r = simulate_cbr_chain(&cfg, ClockPolicy::Random, ClockPolicy::Random, 3).unwrap();
        assert!(r.within_bounds(), "{r}");
        assert_eq!(r.cells_delivered, 400 * 5);
    }

    #[test]
    fn delivered_throughput_tracks_controller_rate() {
        let cfg = base_cfg();
        let r = simulate_cbr_chain(
            &cfg,
            ClockPolicy::Constant(0.5),
            ClockPolicy::Constant(0.5),
            1,
        )
        .unwrap();
        // k cells per controller frame of ~103 slots.
        let expect = cfg.cells_per_frame as f64
            / ((cfg.switch_frame_slots + cfg.controller_stuffing) as f64 * cfg.slot_time);
        assert!(
            (r.throughput - expect).abs() < expect * 0.05,
            "throughput {} vs {expect}",
            r.throughput
        );
    }

    #[test]
    fn adjusted_latency_grows_with_hops() {
        let mut short = base_cfg();
        short.hops = 1;
        let mut long = base_cfg();
        long.hops = 8;
        let a = simulate_cbr_chain(&short, ClockPolicy::Random, ClockPolicy::Random, 5).unwrap();
        let b = simulate_cbr_chain(&long, ClockPolicy::Random, ClockPolicy::Random, 5).unwrap();
        assert!(b.max_adjusted_latency > a.max_adjusted_latency);
        assert!(b.latency_bound > a.latency_bound);
        assert!(a.within_bounds() && b.within_bounds());
    }

    #[test]
    fn insufficient_stuffing_is_a_typed_error() {
        let mut cfg = base_cfg();
        cfg.controller_stuffing = 0;
        let e = simulate_cbr_chain(&cfg, ClockPolicy::Random, ClockPolicy::Random, 0).unwrap_err();
        assert_eq!(
            e,
            CbrConfigError::StuffingTooSmall {
                stuffing: 0,
                needed: cfg.min_stuffing()
            }
        );
        assert!(e.to_string().contains("stuffing too small"), "{e}");
    }

    #[test]
    fn degenerate_configs_are_typed_errors() {
        let check = |mutate: fn(&mut CbrChainConfig), want: CbrConfigError| {
            let mut cfg = base_cfg();
            mutate(&mut cfg);
            assert_eq!(cfg.validate(), Err(want));
        };
        check(|c| c.hops = 0, CbrConfigError::NoHops);
        check(|c| c.cells_per_frame = 0, CbrConfigError::NoCells);
        check(
            |c| c.cells_per_frame = 101,
            CbrConfigError::TooManyCellsPerFrame {
                cells: 101,
                frame_slots: 100,
            },
        );
        check(|c| c.switch_frame_slots = 0, CbrConfigError::EmptyFrame);
        check(|c| c.slot_time = 0.0, CbrConfigError::BadSlotTime);
        check(|c| c.slot_time = f64::NAN, CbrConfigError::BadSlotTime);
        check(|c| c.link_latency = -1.0, CbrConfigError::BadLinkLatency);
        check(|c| c.frames = 0, CbrConfigError::NoFrames);
        base_cfg().validate().unwrap();
    }

    #[test]
    fn report_display() {
        let cfg = base_cfg();
        let r = simulate_cbr_chain(&cfg, ClockPolicy::Random, ClockPolicy::Random, 0).unwrap();
        let s = r.to_string();
        assert!(s.contains("max_latency"), "{s}");
    }
}
