//! Unsynchronized clocks — the Appendix B threat model.
//!
//! Every switch and controller times its frames with a local crystal whose
//! rate is "within some tolerance of the same rate". A slow clock
//! stretches frames; a fast clock compresses them. Worse, a clock may
//! drift *within* tolerance over time: "a switch may run more slowly for a
//! time, building up a backlog of cells, then run faster, dumping the
//! backlog onto the downstream switch". [`ClockPolicy`] models constant,
//! random and exactly that adversarial behaviour.

use an2_sched::rng::{SelectRng, Xoshiro256};

/// How a node's frame durations vary within `[min, max]` wall-clock time.
#[derive(Clone, Debug)]
pub enum ClockPolicy {
    /// Every frame takes the same wall-clock time, the given fraction of
    /// the way from the minimum (0.0) to the maximum (1.0).
    Constant(f64),
    /// Each frame's duration is drawn uniformly from `[min, max]`.
    Random,
    /// The Appendix B adversary: `slow_frames` frames at the maximum
    /// duration (clock running slow, backlog builds upstream of the next
    /// node), then `fast_frames` at the minimum (backlog dumped), repeated.
    SlowThenFast {
        /// Frames spent at the maximum duration per cycle.
        slow_frames: u64,
        /// Frames spent at the minimum duration per cycle.
        fast_frames: u64,
    },
}

/// Generates successive frame durations for one node.
///
/// # Examples
///
/// ```
/// use an2_net::clock::{ClockPolicy, FrameClock};
/// // Frames of 1000 slots, slot time 1.0, clock tolerance +/-0.01%.
/// let mut c = FrameClock::new(1000.0, 1e-4, ClockPolicy::Constant(1.0), 0);
/// let d = c.next_frame();
/// assert!((d - 1000.1).abs() < 1e-9); // slowest clock: max duration
/// ```
#[derive(Clone, Debug)]
pub struct FrameClock {
    min: f64,
    max: f64,
    policy: ClockPolicy,
    frame_no: u64,
    rng: Xoshiro256,
}

impl FrameClock {
    /// Creates a clock for frames of nominal duration `nominal` (wall-clock
    /// units) with fractional rate tolerance `tolerance` (e.g. `1e-4` for
    /// ±0.01%): durations range over `nominal * (1 ± tolerance)`.
    ///
    /// # Panics
    ///
    /// Panics if `nominal <= 0`, or `tolerance` is not in `[0, 1)`.
    pub fn new(nominal: f64, tolerance: f64, policy: ClockPolicy, seed: u64) -> Self {
        assert!(
            nominal.is_finite() && nominal > 0.0,
            "nominal frame duration must be positive"
        );
        assert!(
            (0.0..1.0).contains(&tolerance),
            "tolerance must be in [0, 1)"
        );
        if let ClockPolicy::SlowThenFast {
            slow_frames,
            fast_frames,
        } = policy
        {
            assert!(
                slow_frames + fast_frames > 0,
                "adversarial cycle must contain at least one frame"
            );
        }
        Self {
            min: nominal * (1.0 - tolerance),
            max: nominal * (1.0 + tolerance),
            policy,
            frame_no: 0,
            rng: Xoshiro256::seed_from(seed),
        }
    }

    /// The minimum possible frame duration (fastest clock).
    pub fn min_duration(&self) -> f64 {
        self.min
    }

    /// The maximum possible frame duration (slowest clock).
    pub fn max_duration(&self) -> f64 {
        self.max
    }

    /// Returns the wall-clock duration of the next frame.
    pub fn next_frame(&mut self) -> f64 {
        let d = match &self.policy {
            ClockPolicy::Constant(frac) => self.min + (self.max - self.min) * frac.clamp(0.0, 1.0),
            ClockPolicy::Random => self.min + (self.max - self.min) * self.rng.uniform_f64(),
            ClockPolicy::SlowThenFast {
                slow_frames,
                fast_frames,
            } => {
                let pos = self.frame_no % (slow_frames + fast_frames);
                if pos < *slow_frames {
                    self.max
                } else {
                    self.min
                }
            }
        };
        self.frame_no += 1;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_policy_is_constant() {
        let mut c = FrameClock::new(100.0, 0.01, ClockPolicy::Constant(0.0), 0);
        assert!((c.min_duration() - 99.0).abs() < 1e-9);
        assert!((c.max_duration() - 101.0).abs() < 1e-9);
        for _ in 0..10 {
            assert!((c.next_frame() - 99.0).abs() < 1e-9);
        }
    }

    #[test]
    fn random_policy_stays_in_range() {
        let mut c = FrameClock::new(100.0, 0.05, ClockPolicy::Random, 7);
        for _ in 0..1000 {
            let d = c.next_frame();
            assert!((95.0..=105.0).contains(&d), "duration {d}");
        }
    }

    #[test]
    fn slow_then_fast_alternates() {
        let mut c = FrameClock::new(
            100.0,
            0.1,
            ClockPolicy::SlowThenFast {
                slow_frames: 2,
                fast_frames: 3,
            },
            0,
        );
        let ds: Vec<f64> = (0..10).map(|_| c.next_frame()).collect();
        let want = [110.0, 110.0, 90.0, 90.0, 90.0, 110.0, 110.0, 90.0, 90.0, 90.0];
        for (got, want) in ds.iter().zip(want) {
            assert!((got - want).abs() < 1e-9, "{ds:?}");
        }
    }

    #[test]
    fn zero_tolerance_pins_duration() {
        let mut c = FrameClock::new(42.0, 0.0, ClockPolicy::Random, 1);
        for _ in 0..10 {
            assert!((c.next_frame() - 42.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_nominal_panics() {
        let _ = FrameClock::new(0.0, 0.01, ClockPolicy::Random, 0);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn bad_tolerance_panics() {
        let _ = FrameClock::new(10.0, 1.0, ClockPolicy::Random, 0);
    }
}
