//! CBR admission metering — §4's policing mechanism.
//!
//! "The host controller or the first switch on the flow's path can meter
//! the rate at which cells enter the network; if the application exceeds
//! its reservation, the excess cells may be dropped. Alternatively, excess
//! cells may be allowed into the network, and any switch may drop cells
//! for a flow that exceeds its allocation of buffers."
//!
//! [`FrameMeter`] enforces a reservation of `k` cells per frame of `f`
//! slots, per flow, with a configurable [`ExcessPolicy`].

use an2_sim::cell::FlowId;
use an2_sched::det::DetHashMap;
use std::fmt;

/// What happens to cells beyond the reservation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExcessPolicy {
    /// Drop excess cells at the meter (the paper's first option).
    Drop,
    /// Admit excess cells but mark them; downstream buffers may drop
    /// marked cells under pressure (the paper's second option).
    Mark,
}

/// Verdict for one offered cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MeterVerdict {
    /// Within the reservation; forward normally.
    Conforming,
    /// Beyond the reservation and dropped at the meter.
    Dropped,
    /// Beyond the reservation but admitted, marked droppable.
    Marked,
}

/// Per-flow frame-based rate meter.
///
/// Frames are timed on the meter's local slot counter; a flow may send up
/// to its reserved cells in each frame, with no carry-over between frames
/// (matching the frame-schedule service model of §4).
///
/// # Examples
///
/// ```
/// use an2_net::meter::{ExcessPolicy, FrameMeter, MeterVerdict};
/// use an2_sim::cell::FlowId;
///
/// let mut m = FrameMeter::new(4, ExcessPolicy::Drop);
/// m.set_reservation(FlowId(1), 2);
/// // Slot 0..3 form a frame; the third cell in the frame is excess.
/// assert_eq!(m.offer(FlowId(1), 0), MeterVerdict::Conforming);
/// assert_eq!(m.offer(FlowId(1), 1), MeterVerdict::Conforming);
/// assert_eq!(m.offer(FlowId(1), 2), MeterVerdict::Dropped);
/// // A new frame refreshes the budget.
/// assert_eq!(m.offer(FlowId(1), 4), MeterVerdict::Conforming);
/// ```
#[derive(Clone, Debug)]
pub struct FrameMeter {
    frame_len: u64,
    policy: ExcessPolicy,
    /// Reserved cells per frame, per flow.
    reservations: DetHashMap<FlowId, u64>,
    /// (frame index, cells sent in that frame) per flow.
    usage: DetHashMap<FlowId, (u64, u64)>,
    /// Counters.
    conforming: u64,
    excess: u64,
}

impl FrameMeter {
    /// Creates a meter with `frame_len` slots per frame.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len == 0`.
    pub fn new(frame_len: u64, policy: ExcessPolicy) -> Self {
        assert!(frame_len > 0, "frames must contain at least one slot");
        Self {
            frame_len,
            policy,
            reservations: DetHashMap::default(),
            usage: DetHashMap::default(),
            conforming: 0,
            excess: 0,
        }
    }

    /// Sets a flow's reservation in cells per frame (0 = everything is
    /// excess — a flow with no reservation).
    pub fn set_reservation(&mut self, flow: FlowId, cells_per_frame: u64) {
        self.reservations.insert(flow, cells_per_frame);
    }

    /// The reservation in force for `flow`.
    pub fn reservation(&self, flow: FlowId) -> u64 {
        self.reservations.get(&flow).copied().unwrap_or(0)
    }

    /// Offers one cell of `flow` at `slot`; returns the verdict.
    pub fn offer(&mut self, flow: FlowId, slot: u64) -> MeterVerdict {
        let frame = slot / self.frame_len;
        let budget = self.reservation(flow);
        let entry = self.usage.entry(flow).or_insert((frame, 0));
        if entry.0 != frame {
            *entry = (frame, 0);
        }
        if entry.1 < budget {
            entry.1 += 1;
            self.conforming += 1;
            MeterVerdict::Conforming
        } else {
            self.excess += 1;
            match self.policy {
                ExcessPolicy::Drop => MeterVerdict::Dropped,
                ExcessPolicy::Mark => MeterVerdict::Marked,
            }
        }
    }

    /// Cells admitted as conforming so far.
    pub fn conforming(&self) -> u64 {
        self.conforming
    }

    /// Cells found in excess of their reservation so far.
    pub fn excess(&self) -> u64 {
        self.excess
    }
}

impl fmt::Display for FrameMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FrameMeter(frame={}, {:?}): {} conforming, {} excess",
            self.frame_len, self.policy, self.conforming, self.excess
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conforming_flow_passes_untouched() {
        let mut m = FrameMeter::new(10, ExcessPolicy::Drop);
        m.set_reservation(FlowId(1), 3);
        // 3 cells per 10-slot frame, for 10 frames: all conforming.
        for frame in 0..10u64 {
            for c in 0..3u64 {
                let v = m.offer(FlowId(1), frame * 10 + c);
                assert_eq!(v, MeterVerdict::Conforming);
            }
        }
        assert_eq!(m.conforming(), 30);
        assert_eq!(m.excess(), 0);
    }

    #[test]
    fn violating_flow_is_clipped_to_its_rate() {
        let mut m = FrameMeter::new(10, ExcessPolicy::Drop);
        m.set_reservation(FlowId(2), 2);
        // Offer one cell every slot: only 2 per frame conform.
        let mut ok = 0;
        for slot in 0..100u64 {
            if m.offer(FlowId(2), slot) == MeterVerdict::Conforming {
                ok += 1;
            }
        }
        assert_eq!(ok, 20);
        assert_eq!(m.excess(), 80);
    }

    #[test]
    fn mark_policy_admits_but_marks() {
        let mut m = FrameMeter::new(4, ExcessPolicy::Mark);
        m.set_reservation(FlowId(3), 1);
        assert_eq!(m.offer(FlowId(3), 0), MeterVerdict::Conforming);
        assert_eq!(m.offer(FlowId(3), 1), MeterVerdict::Marked);
        assert!(m.to_string().contains("1 excess"), "{m}");
    }

    #[test]
    fn unreserved_flow_is_all_excess() {
        let mut m = FrameMeter::new(4, ExcessPolicy::Drop);
        assert_eq!(m.offer(FlowId(9), 0), MeterVerdict::Dropped);
        assert_eq!(m.reservation(FlowId(9)), 0);
    }

    #[test]
    fn unused_budget_does_not_carry_over() {
        let mut m = FrameMeter::new(4, ExcessPolicy::Drop);
        m.set_reservation(FlowId(1), 2);
        // Frame 0: silent. Frame 1: still only 2 conforming cells.
        assert_eq!(m.offer(FlowId(1), 4), MeterVerdict::Conforming);
        assert_eq!(m.offer(FlowId(1), 5), MeterVerdict::Conforming);
        assert_eq!(m.offer(FlowId(1), 6), MeterVerdict::Dropped);
    }

    #[test]
    fn flows_are_metered_independently() {
        let mut m = FrameMeter::new(4, ExcessPolicy::Drop);
        m.set_reservation(FlowId(1), 1);
        m.set_reservation(FlowId(2), 1);
        assert_eq!(m.offer(FlowId(1), 0), MeterVerdict::Conforming);
        assert_eq!(m.offer(FlowId(2), 0), MeterVerdict::Conforming);
        assert_eq!(m.offer(FlowId(1), 1), MeterVerdict::Dropped);
        assert_eq!(m.offer(FlowId(2), 1), MeterVerdict::Dropped);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_frame_panics() {
        let _ = FrameMeter::new(0, ExcessPolicy::Drop);
    }
}
