//! The committed tree must lint clean — this is the same check CI's `lint`
//! job runs, wired into `cargo test` so a violation fails locally too.

use an2_lint::rules::{RULE_HOT_ALLOC, RULE_OVERFLOW, RULE_PANIC};
use an2_lint::{
    collect_files, default_root, lint_files, lint_files_full, lint_lockfile, Config, SourceFile,
};

fn render(violations: &[an2_lint::Violation]) -> String {
    violations
        .iter()
        .map(|v| format!("[{}] {}:{}: {}", v.rule, v.file, v.line, v.message))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn the_workspace_lints_clean() {
    let root = default_root();
    let cfg = Config::load(&root).expect("lint/ allowlists must be present and readable");
    let files = collect_files(&root, &cfg).expect("workspace walk failed");
    assert!(
        files.len() > 50,
        "walker found only {} files — wrong root?",
        files.len()
    );
    let mut violations = lint_files(&files, &cfg);
    let lock = std::fs::read_to_string(root.join("Cargo.lock")).expect("Cargo.lock unreadable");
    violations.extend(lint_lockfile(&lock, &cfg));
    assert!(
        violations.is_empty(),
        "the committed tree has lint violations:\n{}",
        render(&violations)
    );
}

#[test]
fn an_injected_violation_is_caught() {
    let root = default_root();
    let cfg = Config::load(&root).expect("lint/ allowlists must be present and readable");
    let mut files = collect_files(&root, &cfg).expect("workspace walk failed");
    // A synthetic hot file whose schedule() allocates: if the linter ever
    // stops seeing this, the clean result above is vacuous.
    files.push(SourceFile {
        path: "crates/an2-sched/src/islip.rs".to_string(),
        src: "pub fn schedule(v: &mut Vec<u32>) { v.push(1); }\n".to_string(),
    });
    let violations = lint_files(&files, &cfg);
    assert!(
        violations.iter().any(|v| v.rule == RULE_HOT_ALLOC),
        "injected hot-path allocation was not detected:\n{}",
        render(&violations)
    );
}

#[test]
fn injected_panic_and_overflow_violations_are_caught() {
    let root = default_root();
    let cfg = Config::load(&root).expect("lint/ allowlists must be present and readable");
    let mut files = collect_files(&root, &cfg).expect("workspace walk failed");
    // A synthetic hot file tripping both v2 rules: raw indexing plus an
    // unwrap (panic-freedom) and a compound counter bump
    // (overflow-discipline). If either stops firing, the empty baseline
    // above proves nothing.
    files.push(SourceFile {
        path: "crates/an2-sched/src/islip.rs".to_string(),
        src: "pub fn schedule(buf: &mut [u64], count: &mut u64) {\n\
              \x20   buf[0] = buf.first().copied().unwrap();\n\
              \x20   *count += 1;\n\
              }\n"
            .to_string(),
    });
    let violations = lint_files(&files, &cfg);
    assert!(
        violations.iter().any(|v| v.rule == RULE_PANIC),
        "injected panic-freedom violation was not detected:\n{}",
        render(&violations)
    );
    assert!(
        violations.iter().any(|v| v.rule == RULE_OVERFLOW),
        "injected overflow-discipline violation was not detected:\n{}",
        render(&violations)
    );
}

#[test]
fn the_cross_crate_closure_dominates_the_per_file_closure() {
    let root = default_root();
    let cfg = Config::load(&root).expect("lint/ allowlists must be present and readable");
    let files = collect_files(&root, &cfg).expect("workspace walk failed");
    let out = lint_files_full(&files, &cfg);
    // PR 10's acceptance floor: the cross-crate (v2) closure must cover at
    // least 1.5x the fns the old per-file (v1) closure saw.
    let ratio = out.closure.v2_fns as f64 / out.closure.v1_fns.max(1) as f64;
    assert!(
        ratio >= 1.5,
        "v2 closure ({} fns) must be >= 1.5x v1 ({} fns), got {ratio:.3}",
        out.closure.v2_fns,
        out.closure.v1_fns
    );
    assert!(
        out.closure.v2_files >= 20,
        "v2 closure should span the scheduling stack, saw {} files",
        out.closure.v2_files
    );
}
