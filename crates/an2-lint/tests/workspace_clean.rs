//! The committed tree must lint clean — this is the same check CI's `lint`
//! job runs, wired into `cargo test` so a violation fails locally too.

use an2_lint::rules::RULE_HOT_ALLOC;
use an2_lint::{collect_files, default_root, lint_files, lint_lockfile, Config, SourceFile};

fn render(violations: &[an2_lint::Violation]) -> String {
    violations
        .iter()
        .map(|v| format!("[{}] {}:{}: {}", v.rule, v.file, v.line, v.message))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn the_workspace_lints_clean() {
    let root = default_root();
    let cfg = Config::load(&root).expect("lint/ allowlists must be present and readable");
    let files = collect_files(&root, &cfg).expect("workspace walk failed");
    assert!(
        files.len() > 50,
        "walker found only {} files — wrong root?",
        files.len()
    );
    let mut violations = lint_files(&files, &cfg);
    let lock = std::fs::read_to_string(root.join("Cargo.lock")).expect("Cargo.lock unreadable");
    violations.extend(lint_lockfile(&lock, &cfg));
    assert!(
        violations.is_empty(),
        "the committed tree has lint violations:\n{}",
        render(&violations)
    );
}

#[test]
fn an_injected_violation_is_caught() {
    let root = default_root();
    let cfg = Config::load(&root).expect("lint/ allowlists must be present and readable");
    let mut files = collect_files(&root, &cfg).expect("workspace walk failed");
    // A synthetic hot file whose schedule() allocates: if the linter ever
    // stops seeing this, the clean result above is vacuous.
    files.push(SourceFile {
        path: "crates/an2-sched/src/islip.rs".to_string(),
        src: "pub fn schedule(v: &mut Vec<u32>) { v.push(1); }\n".to_string(),
    });
    let violations = lint_files(&files, &cfg);
    assert!(
        violations.iter().any(|v| v.rule == RULE_HOT_ALLOC),
        "injected hot-path allocation was not detected:\n{}",
        render(&violations)
    );
}
