//! Self-tests: every rule must fire on its bad fixture and stay silent on
//! the good twin. Fixtures live in `tests/fixtures/` as raw lint input —
//! the workspace walker skips that directory, and cargo never compiles
//! files in test subdirectories, so deliberate violations are inert.

use an2_lint::rules::{
    RULE_DETERMINISM, RULE_DEPS, RULE_HOT_ALLOC, RULE_OVERFLOW, RULE_PANIC, RULE_STDOUT,
    RULE_UNSAFE,
};
use an2_lint::{lint_files, lint_files_full, lint_lockfile, Config, SourceFile, Violation};
use std::path::Path;

/// Loads a fixture and pretends it sits at `fake_path` in the workspace,
/// which is what places it in (or out of) each rule's scope.
fn fixture(name: &str, fake_path: &str) -> SourceFile {
    let disk = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    SourceFile {
        path: fake_path.to_string(),
        src: std::fs::read_to_string(&disk)
            .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", disk.display())),
    }
}

fn lint_one(file: SourceFile, cfg: &Config) -> Vec<Violation> {
    lint_files(&[file], cfg)
}

fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.rule).collect()
}

#[test]
fn hot_alloc_fires_through_a_method_call() {
    let cfg = Config::base();
    let v = lint_one(
        fixture("hot_alloc_bad.rs", "crates/an2-sched/src/pim.rs"),
        &cfg,
    );
    assert_eq!(rules_of(&v), [RULE_HOT_ALLOC], "{v:#?}");
    // The diagnostic must point at the `.push(1)` inside `fill`, the
    // callee, not at `schedule` itself.
    assert!(v[0].snippet.contains("push"), "{v:#?}");
    assert!(v[0].message.contains("fill"), "{v:#?}");
    assert!(v[0].message.contains("schedule"), "{v:#?}");
}

#[test]
fn hot_alloc_respects_allow_and_cold_annotations() {
    let cfg = Config::base();
    let v = lint_one(
        fixture("hot_alloc_good.rs", "crates/an2-sched/src/pim.rs"),
        &cfg,
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn hot_alloc_ignores_files_outside_the_hot_set() {
    let cfg = Config::base();
    // Same allocating code, but in a crate with no hot-path contract.
    let v = lint_one(
        fixture("hot_alloc_bad.rs", "crates/an2-bench/src/lib.rs"),
        &cfg,
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn determinism_fires_on_every_nondeterminism_source() {
    let cfg = Config::base();
    let v = lint_one(
        fixture("determinism_bad.rs", "crates/an2-sim/src/voq.rs"),
        &cfg,
    );
    assert!(v.iter().all(|v| v.rule == RULE_DETERMINISM), "{v:#?}");
    let text = v
        .iter()
        .map(|v| format!("{} {}", v.message, v.snippet))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("HashMap"), "{text}");
    assert!(text.contains("Instant"), "{text}");
    assert!(text.contains("env"), "{text}");
}

#[test]
fn determinism_accepts_det_collections_and_test_code() {
    let cfg = Config::base();
    let v = lint_one(
        fixture("determinism_good.rs", "crates/an2-sim/src/voq.rs"),
        &cfg,
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn determinism_is_scoped_to_the_simulation_crates() {
    let cfg = Config::base();
    // The same nondeterministic code outside det_prefixes is fine.
    let v = lint_one(
        fixture("determinism_bad.rs", "crates/an2-bench/src/lib.rs"),
        &cfg,
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn unsafe_without_rationale_fires_even_when_allowlisted() {
    let mut cfg = Config::base();
    cfg.unsafe_allowlist
        .push("crates/an2-sched/src/fixture.rs".to_string());
    let v = lint_one(
        fixture("unsafe_bad.rs", "crates/an2-sched/src/fixture.rs"),
        &cfg,
    );
    assert_eq!(rules_of(&v), [RULE_UNSAFE], "{v:#?}");
    assert!(v[0].message.contains("SAFETY"), "{v:#?}");
}

#[test]
fn unsafe_outside_the_allowlist_fires_despite_a_rationale() {
    let cfg = Config::base(); // empty allowlist
    let v = lint_one(
        fixture("unsafe_good.rs", "crates/an2-sched/src/fixture.rs"),
        &cfg,
    );
    assert_eq!(rules_of(&v), [RULE_UNSAFE], "{v:#?}");
    assert!(v[0].message.contains("allowlist"), "{v:#?}");
}

#[test]
fn unsafe_with_rationale_in_allowlisted_file_passes() {
    let mut cfg = Config::base();
    cfg.unsafe_allowlist
        .push("crates/an2-sched/src/fixture.rs".to_string());
    let v = lint_one(
        fixture("unsafe_good.rs", "crates/an2-sched/src/fixture.rs"),
        &cfg,
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn stdout_macros_fire_outside_binary_targets() {
    let cfg = Config::base();
    let v = lint_one(fixture("stdout_bad.rs", "crates/an2-net/src/lib.rs"), &cfg);
    assert_eq!(
        rules_of(&v),
        [RULE_STDOUT, RULE_STDOUT, RULE_STDOUT],
        "{v:#?}"
    );
}

#[test]
fn stdout_is_allowed_in_bins_stderr_strings_and_tests() {
    let cfg = Config::base();
    // Good twin in a library: nothing fires.
    let v = lint_one(fixture("stdout_good.rs", "crates/an2-net/src/lib.rs"), &cfg);
    assert!(v.is_empty(), "{v:#?}");
    // The bad twin relocated into a bin target: also nothing.
    let v = lint_one(fixture("stdout_bad.rs", "crates/an2-bench/src/main.rs"), &cfg);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn panic_freedom_fires_on_every_panic_class() {
    let cfg = Config::base();
    let v = lint_one(
        fixture("panic_bad.rs", "crates/an2-sched/src/pim.rs"),
        &cfg,
    );
    assert_eq!(
        rules_of(&v),
        [RULE_PANIC, RULE_PANIC, RULE_PANIC, RULE_PANIC, RULE_PANIC],
        "{v:#?}"
    );
    let text = v
        .iter()
        .map(|v| format!("{} {}", v.message, v.snippet))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("assert"), "{text}");
    assert!(text.contains("unwrap"), "{text}");
    assert!(text.contains("expect"), "{text}");
    assert!(text.contains("panic!"), "{text}");
    assert!(text.contains("indexing"), "{text}");
}

#[test]
fn panic_freedom_accepts_debug_assert_allow_and_cold_cuts() {
    let cfg = Config::base();
    let v = lint_one(
        fixture("panic_good.rs", "crates/an2-sched/src/pim.rs"),
        &cfg,
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn panic_freedom_ignores_files_outside_the_hot_closure() {
    let cfg = Config::base();
    let v = lint_one(
        fixture("panic_bad.rs", "crates/an2-bench/src/lib.rs"),
        &cfg,
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn overflow_discipline_fires_on_compound_and_bare_counter_arithmetic() {
    let cfg = Config::base();
    let v = lint_one(
        fixture("overflow_bad.rs", "crates/an2-sched/src/pim.rs"),
        &cfg,
    );
    assert_eq!(
        rules_of(&v),
        [RULE_OVERFLOW, RULE_OVERFLOW, RULE_OVERFLOW],
        "{v:#?}"
    );
    let text = v
        .iter()
        .map(|v| v.snippet.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("count += 1"), "{text}");
    assert!(text.contains("self.total + delta"), "{text}");
    assert!(text.contains("drops -= 1"), "{text}");
}

#[test]
fn overflow_discipline_accepts_wrapping_saturating_and_allows() {
    let cfg = Config::base();
    let v = lint_one(
        fixture("overflow_good.rs", "crates/an2-sched/src/pim.rs"),
        &cfg,
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn the_closure_crosses_crate_boundaries() {
    let cfg = Config::base();
    // The violation is in an2-sim, but only `schedule` in an2-sched makes
    // it hot — the callee's fake path is NOT a per-file hot seed.
    let entry = fixture("closure_entry.rs", "crates/an2-sched/src/scheduler.rs");
    let callee = fixture("closure_callee.rs", "crates/an2-sim/src/helper.rs");
    assert!(
        !cfg.hot_files.contains(&callee.path),
        "callee path must not be a seed for this test to prove reachability"
    );
    let out = lint_files_full(&[entry, callee], &cfg);
    let alloc: Vec<_> = out
        .violations
        .iter()
        .filter(|v| v.rule == RULE_HOT_ALLOC)
        .collect();
    assert_eq!(alloc.len(), 1, "{:#?}", out.violations);
    assert_eq!(alloc[0].file, "crates/an2-sim/src/helper.rs");
    assert!(alloc[0].message.contains("admit"), "{:#?}", alloc[0]);
    // The closure metrics must record the cross-crate edge: `admit` is hot
    // via `Sched::schedule`, not a seed of its own.
    let admit = out
        .closure
        .hot_fns
        .iter()
        .find(|(file, _, name, _)| file.ends_with("helper.rs") && name.contains("admit"))
        .expect("admit must be in the v2 closure");
    assert!(admit.3.contains("schedule"), "{admit:?}");
    // The per-file v1 closure cannot see it: v2 strictly dominates here.
    assert!(out.closure.v2_fns > out.closure.v1_fns, "{:#?}", out.closure);
}

#[test]
fn lockfile_rejects_unknown_crates_and_external_sources() {
    let mut cfg = Config::base();
    cfg.deps_allowlist = vec!["an2-sched".to_string()];
    let lock = r#"
version = 3

[[package]]
name = "an2-sched"
version = "0.1.0"

[[package]]
name = "rand"
version = "0.8.5"
source = "registry+https://github.com/rust-lang/crates.io-index"
"#;
    let v = lint_lockfile(lock, &cfg);
    assert_eq!(rules_of(&v), [RULE_DEPS, RULE_DEPS], "{v:#?}");
    assert!(v[0].message.contains("rand"), "{v:#?}");
    assert!(v[1].message.contains("external source"), "{v:#?}");
}

#[test]
fn lockfile_accepts_the_workspace_closure() {
    let mut cfg = Config::base();
    cfg.deps_allowlist = vec!["an2-sched".to_string(), "an2-sim".to_string()];
    let lock = r#"
version = 3

[[package]]
name = "an2-sched"
version = "0.1.0"

[[package]]
name = "an2-sim"
version = "0.1.0"
dependencies = [
 "an2-sched",
]
"#;
    let v = lint_lockfile(lock, &cfg);
    assert!(v.is_empty(), "{v:#?}");
}
