//! Fixture (bad): stdout writes outside a binary target — all three macros
//! must fire.

pub fn noisy(x: u32) -> u32 {
    println!("x = {x}");
    print!("more");
    dbg!(x + 1)
}
