//! Fixture (good): a justified `unsafe` in an allowlisted file passes, with
//! the rationale walking over an attribute line.

#[inline]
pub fn read_first(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees the slice has a first byte, so
    // the pointer read is within bounds of a live allocation.
    unsafe { *v.as_ptr() }
}
