//! Fixture (bad): `unsafe` without a `// SAFETY:` rationale on the
//! preceding line must fire even in an allowlisted file.

pub fn read_first(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    unsafe { *v.as_ptr() }
}
