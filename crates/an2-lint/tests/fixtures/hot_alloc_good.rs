//! Fixture (good): the same shape with a fixed-size buffer accessed via
//! `get_mut`, wrapping counter arithmetic, a justified allocation behind an
//! inline allow, and a `// an2-lint: cold` rebuild function that allocates
//! but is excluded from the closure.

pub struct Sched {
    buf: [u32; 8],
    scratch: Vec<u32>,
    len: usize,
}

impl Sched {
    pub fn schedule(&mut self) -> u32 {
        self.fill();
        self.warm();
        self.len as u32
    }

    fn fill(&mut self) {
        if let Some(slot) = self.buf.get_mut(self.len) {
            *slot = 1;
        }
        self.len = self.len.wrapping_add(1);
    }

    fn warm(&mut self) {
        // an2-lint: allow(alloc-in-hot-path) capacity reserved at build; reused after warm-up
        self.scratch.push(0);
    }

    // an2-lint: cold
    fn rebuild(&mut self) {
        let grown: Vec<u32> = (0..8).collect();
        self.len = grown.len();
    }
}
