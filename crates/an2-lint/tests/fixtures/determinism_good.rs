//! Fixture (good): deterministic equivalents pass, and `#[cfg(test)]` code
//! may hash however it likes.

use an2_sched::det::DetHashMap;

pub fn len(map: &DetHashMap<u32, u32>) -> usize {
    map.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn maps_work() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.len(), 1);
    }
}
