//! Cross-crate closure fixture, callee side: `admit` allocates. It is hot
//! only because `closure_entry.rs`'s `schedule` reaches it across the crate
//! boundary.

pub struct VoqBuffer {
    cells: Vec<u64>,
}

impl VoqBuffer {
    pub fn admit(&mut self, cell: u64) {
        self.cells.push(cell);
    }
}
