//! Bad twin for the overflow-discipline rule: compound accumulation and a
//! bare `+` on a counter inside the hot closure seeded at `schedule`.

pub struct Sched {
    count: u64,
    total: u64,
    drops: u64,
}

impl Sched {
    pub fn schedule(&mut self, delta: u64) {
        self.count += 1;
        self.total = self.total + delta;
        self.drops -= 1;
    }
}
