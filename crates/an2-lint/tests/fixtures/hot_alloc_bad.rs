//! Fixture (bad): an allocation reachable from `schedule()` must fire the
//! alloc-in-hot-path rule, including through one level of method call.

pub struct Sched {
    buf: Vec<u32>,
}

impl Sched {
    pub fn schedule(&mut self) -> u32 {
        self.fill();
        self.buf.len() as u32
    }

    fn fill(&mut self) {
        self.buf.push(1);
    }
}
