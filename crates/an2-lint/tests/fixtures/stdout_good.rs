//! Fixture (good): stderr is fine, `println!` in a string is data, and
//! test code may print.

pub fn quiet(x: u32) -> u32 {
    eprintln!("diagnostics go to stderr: {x}");
    let _doc = "println! in a string is data, not code";
    x
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("visible with --nocapture");
    }
}
