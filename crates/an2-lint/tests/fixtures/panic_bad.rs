//! Bad twin for the panic-freedom rule: one violation per class, all
//! inside the hot closure seeded at `schedule`.

pub struct Sched {
    buf: [u64; 8],
}

impl Sched {
    pub fn schedule(&mut self, i: usize) -> u64 {
        assert!(i < 8, "out of range");
        let x = self.buf.get(i).unwrap();
        let y = self.buf.first().expect("empty");
        if i > 8 {
            panic!("impossible load");
        }
        self.buf[i]
    }
}
