//! Fixture (bad): every nondeterminism source in one file — random-hasher
//! collections, wall-clock reads, and environment reads must all fire.

use std::collections::HashMap;
use std::time::Instant;

pub fn now_len(map: &HashMap<u32, u32>) -> usize {
    let _t = Instant::now();
    let _home = std::env::var("HOME");
    map.len()
}
