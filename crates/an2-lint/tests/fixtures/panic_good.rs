//! Good twin for the panic-freedom rule: the same shape written with the
//! sanctioned idioms — `debug_assert!` (compiles out of release), `get`-based
//! access, a justified allow naming its invariant, and a `cold` cut for the
//! asserting validator.

pub struct Sched {
    buf: [u64; 8],
}

impl Sched {
    pub fn schedule(&mut self, i: usize) -> u64 {
        debug_assert!(i < 8, "out of range");
        let x = self.buf.get(i).copied().unwrap_or(0);
        // an2-lint: allow(panic-freedom) the mask pins the index < 8, the array length
        let y = self.buf[i & 7];
        self.validate(i);
        x.wrapping_add(y)
    }

    // an2-lint: cold — the validator is a debug observer, never on the slot loop
    fn validate(&self, i: usize) {
        assert!(i < 8, "cold validators may assert");
    }
}
