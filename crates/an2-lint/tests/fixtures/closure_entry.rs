//! Cross-crate closure fixture, caller side: `schedule` lives in one crate
//! and calls into a buffer type imported from another. The violation sits in
//! the callee's crate — only the cross-crate (v2) call graph can reach it.

use an2_sim::voq::VoqBuffer;

pub struct Sched {
    voq: VoqBuffer,
}

impl Sched {
    pub fn schedule(&mut self) {
        self.voq.admit(3);
    }
}
