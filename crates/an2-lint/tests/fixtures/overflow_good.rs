//! Good twin for the overflow-discipline rule: the same counters written
//! with explicit wrapping/saturating arithmetic, plus one justified allow
//! naming the boundedness invariant.

pub struct Sched {
    count: u64,
    total: u64,
    slots: u64,
}

impl Sched {
    pub fn schedule(&mut self, delta: u64) {
        self.count = self.count.wrapping_add(1);
        self.total = self.total.saturating_add(delta);
        // an2-lint: allow(overflow-discipline) slots is bounded by the run length; 2^64 slots is unreachable
        self.slots += 1;
    }
}
