//! The cross-crate hot-path call graph.
//!
//! PR 5's closure stopped at `Config::hot_files`: a call from `pim.rs` into
//! `voq.rs` simply fell off the edge of the analyzed world, so per-slot code
//! outside the hand-listed file set ran outside every hot-path rule. This
//! module builds the call graph over the *whole workspace* and resolves
//! calls the way Rust name resolution would, approximately and
//! conservatively:
//!
//! * **Method calls** `x.f(…)` resolve by name to every `impl` fn named `f`
//!   in any crate (the lexer cannot type `x`, so the closure
//!   over-approximates — sound for a rule that must not miss hot code).
//! * **Qualified calls** `Type::f(…)`, `crate::m::f(…)`, `an2_sched::m::f(…)`
//!   walk the full `::` path: an uppercase qualifier matches `impl Type`
//!   blocks, a crate-or-module qualifier matches free fns of that crate.
//! * **Free calls** `f(…)` resolve to free fns of the caller's own crate
//!   plus any `use`-imported fn of that name (imports are parsed per file,
//!   including `{…}` groups and `as` renames) — unqualified names cannot
//!   reach farther than that in real Rust either.
//!
//! Traversal starts from the seeds ([`Config::hot_files`] × `hot_seed_fns`,
//! plus `// an2-lint: hot` annotations anywhere) and stops at
//! `// an2-lint: cold` cuts and test code. The PR 5 per-file closure is
//! still computed (same resolution, domain restricted to the original file
//! list) so `results/LINT.json` can report how much hot code the old linter
//! never saw.

use crate::analyze::{FileAnalysis, FnItem};
use crate::config::Config;
use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// One candidate node of the call graph: a non-test fn with a body.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    /// Index into the analyses slice.
    pub file: usize,
    /// Index into that file's `fns`.
    pub item: usize,
}

/// A call site extracted from a fn body.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Call {
    /// `x.f(…)` — a method, resolved by name across every crate.
    Method(String),
    /// `f(…)` — a free fn, resolved within the caller's crate + imports.
    Free(String),
    /// A `::`-qualified call: full path segments, last one is the fn.
    Path(Vec<String>),
}

/// The workspace call graph plus the indexes needed to resolve calls.
#[derive(Debug)]
pub struct CallGraph<'a> {
    analyses: &'a [FileAnalysis],
    /// All candidate fns, in (file, item) order.
    pub nodes: Vec<Node>,
    /// Crate name (underscored) per file index; empty when the file is
    /// outside `crates/` (workspace-root `src/`, `tests/`, …).
    crate_of_file: Vec<String>,
    /// Extracted call sites per node (same indexing as `nodes`).
    calls: Vec<Vec<Call>>,
    /// `impl` fns by name, across every crate.
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// `impl Type` fns by (type, name).
    type_fns: BTreeMap<(String, String), Vec<usize>>,
    /// Free fns by (crate, name).
    free_by_crate: BTreeMap<(String, String), Vec<usize>>,
    /// Per file: imported leaf name (or `as` alias) → (crate, original
    /// name) for every `use` declaration that names an in-workspace crate
    /// or a `crate`/`self`/`super` path.
    imports: Vec<BTreeMap<String, (String, String)>>,
}

/// A computed hot-fn closure with its reachability metadata.
#[derive(Debug)]
pub struct Closure {
    /// Node indexes (into [`CallGraph::nodes`]) in the closure.
    pub hot: BTreeSet<usize>,
    /// Resolved call edges followed while building the closure.
    pub edges: usize,
    /// First-discovery parent per non-seed member: why is this fn hot?
    pub parents: BTreeMap<usize, usize>,
}

impl<'a> CallGraph<'a> {
    /// Builds the graph over every analyzed file.
    pub fn build(analyses: &'a [FileAnalysis]) -> Self {
        let crate_of_file: Vec<String> = analyses.iter().map(|a| crate_of(&a.path)).collect();
        let mut nodes = Vec::new();
        for (fi, a) in analyses.iter().enumerate() {
            for (ii, f) in a.fns.iter().enumerate() {
                if !f.in_test && f.body.is_some() {
                    nodes.push(Node { file: fi, item: ii });
                }
            }
        }

        let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut type_fns: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut free_by_crate: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (idx, n) in nodes.iter().enumerate() {
            let f = item(analyses, n);
            methods_by_name.entry(f.name.clone()).or_default().push(idx);
            match &f.impl_type {
                Some(ty) => type_fns
                    .entry((ty.clone(), f.name.clone()))
                    .or_default()
                    .push(idx),
                None => free_by_crate
                    .entry((crate_of_file[n.file].clone(), f.name.clone()))
                    .or_default()
                    .push(idx),
            }
        }

        let known_crates: BTreeSet<String> =
            crate_of_file.iter().filter(|c| !c.is_empty()).cloned().collect();
        let imports = analyses
            .iter()
            .enumerate()
            .map(|(fi, a)| parse_imports(a, &crate_of_file[fi], &known_crates))
            .collect();

        let calls = nodes
            .iter()
            .map(|n| body_calls(&analyses[n.file], item(analyses, n)))
            .collect();

        Self {
            analyses,
            nodes,
            crate_of_file,
            calls,
            methods_by_name,
            type_fns,
            free_by_crate,
            imports,
        }
    }

    /// The [`FnItem`] behind a node index.
    pub fn fn_of(&self, idx: usize) -> &FnItem {
        item(self.analyses, &self.nodes[idx])
    }

    /// The [`FileAnalysis`] behind a node index.
    pub fn file_of(&self, idx: usize) -> &FileAnalysis {
        &self.analyses[self.nodes[idx].file]
    }

    /// Computes the hot closure. `seed_files` scopes the `hot_seed_fns`
    /// seeds; `domain` (when given) restricts traversal to fns in those
    /// files — the PR 5 per-file behavior, kept for the v1/v2 comparison.
    pub fn closure(&self, cfg: &Config, seed_files: &[String], domain: Option<&[String]>) -> Closure {
        let in_domain = |idx: usize| -> bool {
            let path = &self.analyses[self.nodes[idx].file].path;
            if !cfg
                .hot_domain_prefixes
                .iter()
                .any(|p| path.starts_with(p.as_str()))
            {
                return false;
            }
            match domain {
                None => true,
                Some(files) => files.contains(path),
            }
        };
        let mut hot: BTreeSet<usize> = BTreeSet::new();
        let mut work: Vec<usize> = Vec::new();
        for (idx, n) in self.nodes.iter().enumerate() {
            let f = item(self.analyses, n);
            if f.cold_annotated || !in_domain(idx) {
                continue;
            }
            let seeded = (cfg.hot_seed_fns.contains(&f.name)
                && seed_files.contains(&self.analyses[n.file].path))
                || f.hot_annotated;
            if seeded && hot.insert(idx) {
                work.push(idx);
            }
        }
        let mut edges = 0usize;
        let mut parents: BTreeMap<usize, usize> = BTreeMap::new();
        while let Some(idx) = work.pop() {
            for call in &self.calls[idx] {
                for t in self.resolve(idx, call) {
                    let f = self.fn_of(t);
                    if f.cold_annotated || !in_domain(t) {
                        continue;
                    }
                    edges += 1;
                    if hot.insert(t) {
                        parents.insert(t, idx);
                        work.push(t);
                    }
                }
            }
        }
        Closure { hot, edges, parents }
    }

    /// Resolves one call site from `caller` to candidate nodes.
    fn resolve(&self, caller: usize, call: &Call) -> Vec<usize> {
        let caller_node = &self.nodes[caller];
        let caller_crate = &self.crate_of_file[caller_node.file];
        match call {
            Call::Method(name) => self
                .methods_by_name
                .get(name)
                .cloned()
                .unwrap_or_default(),
            Call::Free(name) => {
                let mut out = self.free_in_crate(caller_crate, name);
                if let Some((krate, orig)) = self.imports[caller_node.file].get(name) {
                    out.extend(self.free_in_crate(krate, orig));
                }
                out.sort_unstable();
                out.dedup();
                out
            }
            Call::Path(segs) => self.resolve_path(caller, segs),
        }
    }

    /// Resolves a `::`-qualified call path.
    fn resolve_path(&self, caller: usize, segs: &[String]) -> Vec<usize> {
        let caller_node = &self.nodes[caller];
        let caller_crate = &self.crate_of_file[caller_node.file];
        let name = segs.last().expect("paths have a final segment");
        let qualifier = &segs[..segs.len() - 1];
        let Some(q_last) = qualifier.last() else {
            return Vec::new();
        };

        // `Self::f` — the caller's own impl type.
        if q_last == "Self" {
            let ty = item(self.analyses, caller_node)
                .impl_type
                .clone()
                .unwrap_or_else(|| "Self".to_string());
            return self.type_or_free(&ty, name, caller_crate);
        }
        // Uppercase last qualifier: an associated fn on a type, wherever
        // the type's impls live (types travel by `use`, so crate-global).
        if starts_upper(q_last) {
            return self.type_or_free(q_last, name, caller_crate);
        }
        // Module path: figure out which crate it lands in.
        let first = &segs[0];
        let krate = if first == "crate" || first == "self" || first == "super" {
            caller_crate.clone()
        } else if self.free_by_crate.keys().any(|(c, _)| c == first)
            || self.crate_of_file.iter().any(|c| c == first)
        {
            first.clone()
        } else if let Some((krate, _)) = self.imports[caller_node.file].get(q_last) {
            // `use an2_sched::rng; … rng::index(…)` — module alias.
            krate.clone()
        } else if first == "std" || first == "core" || first == "alloc" {
            return Vec::new();
        } else {
            // Unknown module qualifier (`m::f` for a submodule): stay in
            // the caller's crate.
            caller_crate.clone()
        };
        self.free_in_crate(&krate, name)
    }

    /// `Type::f` lookup, falling back to free fns of the caller's crate
    /// when no impl matches (module constants/paths mistaken for types).
    fn type_or_free(&self, ty: &str, name: &str, caller_crate: &str) -> Vec<usize> {
        match self.type_fns.get(&(ty.to_string(), name.to_string())) {
            Some(v) => v.clone(),
            None => self.free_in_crate(caller_crate, name),
        }
    }

    fn free_in_crate(&self, krate: &str, name: &str) -> Vec<usize> {
        self.free_by_crate
            .get(&(krate.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default()
    }
}

fn item<'a>(analyses: &'a [FileAnalysis], n: &Node) -> &'a FnItem {
    &analyses[n.file].fns[n.item]
}

/// The crate a workspace-relative path belongs to, with `-` mapped to `_`
/// as in Rust paths (`crates/an2-sched/src/pim.rs` → `an2_sched`).
pub fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.replace('-', "_");
        }
    }
    String::new()
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

fn is_punct(t: &Tok, c: char) -> bool {
    t.kind == TokKind::Punct(c)
}

/// Finds the matching `<` for the `>` at `gt`, walking backwards. Returns
/// `None` when nesting never closes within the body (a comparison operator,
/// not a generic-argument group).
fn angle_open(toks: &[Tok], open: usize, gt: usize) -> Option<usize> {
    let mut depth = 1i32;
    let mut k = gt;
    while k > open {
        k -= 1;
        match toks[k].kind {
            TokKind::Punct('>') => depth += 1,
            TokKind::Punct('<') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            // A `;` or `{` cannot appear inside generic arguments: this
            // `>` was a comparison after all.
            TokKind::Punct(';') | TokKind::Punct('{') => return None,
            _ => {}
        }
    }
    None
}

/// Extracts the call sites of a fn body, walking full `::` paths including
/// turbofish segments (`PortSetN::<W>::new(…)`, `iter.collect::<V>(…)`).
fn body_calls(a: &FileAnalysis, f: &FnItem) -> Vec<Call> {
    let (open, close) = f.body.expect("graph nodes all have bodies");
    let toks = &a.toks;
    let mut calls = Vec::new();
    for i in open + 1..close {
        if !is_punct(&toks[i], '(') {
            continue;
        }
        // Locate the callee name just before this `(`: either `name(` or a
        // turbofish `name::<…>(`.
        let callee = if i >= 1 && toks[i - 1].kind == TokKind::Ident {
            i - 1
        } else if i >= 1 && is_punct(&toks[i - 1], '>') {
            match angle_open(toks, open, i - 1) {
                Some(k)
                    if k >= 3
                        && is_punct(&toks[k - 1], ':')
                        && is_punct(&toks[k - 2], ':')
                        && toks[k - 3].kind == TokKind::Ident =>
                {
                    k - 3
                }
                _ => continue,
            }
        } else {
            continue;
        };
        let name = toks[callee].text.clone();
        // Walk the `::` chain backwards from the callee: plain segments
        // (`a::b::name`) and generic ones (`Type::<W>::name`).
        let mut segs = vec![name.clone()];
        let mut j = callee;
        let mut opaque_qualifier = false;
        while j >= 3 && is_punct(&toks[j - 1], ':') && is_punct(&toks[j - 2], ':') {
            if toks[j - 3].kind == TokKind::Ident {
                segs.insert(0, toks[j - 3].text.clone());
                j -= 3;
            } else if is_punct(&toks[j - 3], '>') {
                match angle_open(toks, open, j - 3) {
                    // `Type::<W>::name` — skip the turbofish segment.
                    Some(k)
                        if k >= 3
                            && is_punct(&toks[k - 1], ':')
                            && is_punct(&toks[k - 2], ':')
                            && toks[k - 3].kind == TokKind::Ident =>
                    {
                        segs.insert(0, toks[k - 3].text.clone());
                        j = k - 3;
                    }
                    // `<T as Trait>::name` — a qualified path whose type
                    // expression the lexer flattened.
                    _ => {
                        opaque_qualifier = true;
                        break;
                    }
                }
            } else {
                opaque_qualifier = true;
                break;
            }
        }
        if segs.len() > 1 && !opaque_qualifier {
            calls.push(Call::Path(segs));
        } else if opaque_qualifier || (j >= 1 && is_punct(&toks[j - 1], '.')) {
            // Opaque qualifiers resolve like methods: by name.
            calls.push(Call::Method(name));
        } else if segs.len() == 1 {
            calls.push(Call::Free(name));
        }
    }
    calls
}

/// Parses every `use` declaration of a file into leaf-name → (crate,
/// original name) entries. Only paths rooted in an in-workspace crate (or
/// `crate`/`self`/`super`, which mean the file's own crate) produce
/// entries; `std`/external roots resolve to nothing anyway.
fn parse_imports(
    a: &FileAnalysis,
    own_crate: &str,
    known_crates: &BTreeSet<String>,
) -> BTreeMap<String, (String, String)> {
    let mut out = BTreeMap::new();
    let toks = &a.toks;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "use" {
            let start = i + 1;
            let mut end = start;
            while end < toks.len() && !is_punct(&toks[end], ';') {
                end += 1;
            }
            parse_use_tree(&toks[start..end], &mut Vec::new(), own_crate, known_crates, &mut out);
            i = end;
        }
        i += 1;
    }
    out
}

/// Recursively parses one use-tree token slice, accumulating the current
/// path prefix. Handles `a::b::c`, `{x, y::z}` groups, `as` renames, and
/// `self` leaves; `*` globs are ignored (no single name to bind).
fn parse_use_tree(
    toks: &[Tok],
    prefix: &mut Vec<String>,
    own_crate: &str,
    known_crates: &BTreeSet<String>,
    out: &mut BTreeMap<String, (String, String)>,
) {
    let mut segs: Vec<String> = Vec::new();
    let mut i = 0;
    let flush =
        |segs: &[String], alias: Option<&str>, prefix: &[String], out: &mut BTreeMap<String, (String, String)>| {
            let full: Vec<&String> = prefix.iter().chain(segs.iter()).collect();
            let Some(&leaf) = full.last() else { return };
            let Some(root) = full.first() else { return };
            let krate = if *root == "crate" || *root == "self" || *root == "super" {
                own_crate.to_string()
            } else if known_crates.contains(root.as_str()) {
                (*root).clone()
            } else {
                return;
            };
            // A `self` leaf (`use a::b::{self}`) imports the module `b`.
            let (name, default_alias) = if leaf == "self" {
                match full.get(full.len().wrapping_sub(2)) {
                    Some(&module) => (module.clone(), module.clone()),
                    None => return,
                }
            } else {
                (leaf.clone(), leaf.clone())
            };
            out.insert(alias.map_or(default_alias, str::to_string), (krate, name));
        };
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident if t.text == "as" => {
                // `path as alias`
                if let Some(alias_tok) = toks.get(i + 1) {
                    if alias_tok.kind == TokKind::Ident {
                        flush(&segs, Some(&alias_tok.text), prefix, out);
                        segs.clear();
                        i += 2;
                        continue;
                    }
                }
                i += 1;
            }
            TokKind::Ident => {
                segs.push(t.text.clone());
                i += 1;
            }
            TokKind::Punct(':') => i += 1,
            TokKind::Punct(',') => {
                if !segs.is_empty() {
                    flush(&segs, None, prefix, out);
                    segs.clear();
                }
                i += 1;
            }
            TokKind::Punct('{') => {
                // Find the matching close within this slice.
                let mut depth = 1usize;
                let mut j = i + 1;
                while j < toks.len() && depth > 0 {
                    match toks[j].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                let inner_end = j.saturating_sub(1);
                let before = prefix.len();
                prefix.append(&mut segs);
                parse_use_tree(&toks[i + 1..inner_end], prefix, own_crate, known_crates, out);
                prefix.truncate(before);
                i = j;
            }
            _ => i += 1,
        }
    }
    if !segs.is_empty() {
        flush(&segs, None, prefix, out);
    }
}
