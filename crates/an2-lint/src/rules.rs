//! The five invariant rules.
//!
//! Every rule reports [`Violation`]s with a stable rule name, the
//! workspace-relative file, a 1-based line and the offending source line, so
//! a failure in CI names exactly what to fix. Inline escapes use
//! `// an2-lint: allow(<rule>) — reason` on the offending line or the line
//! above; they are deliberately line-granular so each tolerated allocation
//! or collection carries its own justification in the diff.

use crate::analyze::{FileAnalysis, FnItem, SourceFile};
use crate::config::Config;
use crate::lexer::TokKind;
use std::collections::{BTreeMap, BTreeSet};

/// Rule: no allocating calls in functions reachable from `schedule()`.
pub const RULE_HOT_ALLOC: &str = "alloc-in-hot-path";
/// Rule: no wall clocks, random hashers, env reads or foreign RNGs in
/// deterministic crates.
pub const RULE_DETERMINISM: &str = "determinism";
/// Rule: `unsafe` only in allowlisted files, always with a `// SAFETY:`
/// rationale.
pub const RULE_UNSAFE: &str = "unsafe-hygiene";
/// Rule: stdout belongs to `an2-repro` bins only (`--check` byte-identity).
pub const RULE_STDOUT: &str = "stdout-purity";
/// Rule: `Cargo.lock` may only contain allowlisted crates.
pub const RULE_DEPS: &str = "dependency-audit";

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule name (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Trimmed source line for the report.
    pub snippet: String,
    /// What is wrong and what to do instead.
    pub message: String,
}

/// Runs the four source-level rules over `files` (the dependency audit runs
/// separately via [`lint_lockfile`]). Results are sorted by file, line,
/// rule.
pub fn lint_files(files: &[SourceFile], cfg: &Config) -> Vec<Violation> {
    let analyses: Vec<FileAnalysis> = files.iter().map(FileAnalysis::new).collect();
    let mut out = Vec::new();
    for a in &analyses {
        check_unsafe(a, cfg, &mut out);
        check_stdout(a, cfg, &mut out);
        check_determinism(a, cfg, &mut out);
    }
    check_hot_alloc(&analyses, cfg, &mut out);
    out.sort_by(|x, y| {
        (&x.file, x.line, x.rule).cmp(&(&y.file, y.line, y.rule))
    });
    out.dedup();
    out
}

/// Audits `Cargo.lock` against the dependency allowlist.
pub fn lint_lockfile(text: &str, cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut in_package = false;
    let mut current_name: Option<(String, u32)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if line == "[[package]]" {
            in_package = true;
            current_name = None;
            continue;
        }
        if line.starts_with('[') && line != "[[package]]" {
            in_package = false;
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some(name) = toml_str_value(line, "name") {
            if !cfg.deps_allowlist.contains(&name) {
                out.push(Violation {
                    rule: RULE_DEPS,
                    file: "Cargo.lock".to_string(),
                    line: line_no,
                    snippet: line.to_string(),
                    message: format!(
                        "crate `{name}` is not in lint/deps-allowlist.txt; the workspace \
                         builds offline from path dependencies only"
                    ),
                });
            }
            current_name = Some((name, line_no));
        } else if let Some(source) = toml_str_value(line, "source") {
            let name = current_name
                .as_ref()
                .map(|(n, _)| n.as_str())
                .unwrap_or("<unknown>");
            out.push(Violation {
                rule: RULE_DEPS,
                file: "Cargo.lock".to_string(),
                line: line_no,
                snippet: line.to_string(),
                message: format!(
                    "crate `{name}` resolves to external source `{source}`; every \
                     dependency must be an in-workspace path crate"
                ),
            });
        }
    }
    out
}

/// Extracts `value` from a `key = "value"` TOML line.
fn toml_str_value(line: &str, key: &str) -> Option<String> {
    let rest = line.strip_prefix(key)?.trim_start().strip_prefix('=')?;
    let rest = rest.trim();
    let rest = rest.strip_prefix('"')?;
    Some(rest.strip_suffix('"')?.to_string())
}

// ---------------------------------------------------------------------------
// File classification
// ---------------------------------------------------------------------------

fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.starts_with("examples/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

fn is_bin_path(path: &str) -> bool {
    path.ends_with("src/main.rs") || path.contains("/src/bin/")
}

// ---------------------------------------------------------------------------
// Rule 3: unsafe hygiene
// ---------------------------------------------------------------------------

fn check_unsafe(a: &FileAnalysis, cfg: &Config, out: &mut Vec<Violation>) {
    for t in &a.toks {
        if !(t.kind == TokKind::Ident && t.text == "unsafe") {
            continue;
        }
        if a.allowed(RULE_UNSAFE, t.line) {
            continue;
        }
        if !cfg.unsafe_allowlist.contains(&a.path) {
            out.push(violation(
                RULE_UNSAFE,
                a,
                t.line,
                "`unsafe` in a file not listed in lint/unsafe-allowlist.txt; the \
                 workspace is unsafe-free outside audited exceptions"
                    .to_string(),
            ));
        } else if !a.has_safety_comment(t.line) {
            out.push(violation(
                RULE_UNSAFE,
                a,
                t.line,
                "`unsafe` without a `// SAFETY:` rationale on the preceding line".to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: stdout purity
// ---------------------------------------------------------------------------

fn check_stdout(a: &FileAnalysis, cfg: &Config, out: &mut Vec<Violation>) {
    if is_bin_path(&a.path)
        || is_test_path(&a.path)
        || cfg
            .stdout_exempt_prefixes
            .iter()
            .any(|p| a.path.starts_with(p.as_str()))
    {
        return;
    }
    for (i, t) in a.toks.iter().enumerate() {
        let is_macro = t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "println" | "print" | "dbg")
            && a.toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct('!'));
        if !is_macro || a.in_test(i) || a.allowed(RULE_STDOUT, t.line) {
            continue;
        }
        out.push(violation(
            RULE_STDOUT,
            a,
            t.line,
            format!(
                "`{}!` outside an2-repro bins breaks the `--check` stdout byte-identity \
                 contract; report on stderr (`eprintln!`) or return data to the caller",
                t.text
            ),
        ));
    }
}

// ---------------------------------------------------------------------------
// Rule 2: determinism
// ---------------------------------------------------------------------------

const RANDOM_STATE_IDENTS: [&str; 5] =
    ["HashMap", "HashSet", "RandomState", "DefaultHashBuilder", "ahash"];
const WALL_CLOCK_IDENTS: [&str; 2] = ["Instant", "SystemTime"];
const FOREIGN_RNG_IDENTS: [&str; 5] =
    ["thread_rng", "from_entropy", "OsRng", "StdRng", "SmallRng"];

fn check_determinism(a: &FileAnalysis, cfg: &Config, out: &mut Vec<Violation>) {
    if is_test_path(&a.path)
        || !cfg.det_prefixes.iter().any(|p| a.path.starts_with(p.as_str()))
        || cfg.det_exempt_files.contains(&a.path)
    {
        return;
    }
    let report = |out: &mut Vec<Violation>, line: u32, message: String| {
        out.push(violation(RULE_DETERMINISM, a, line, message));
    };
    for (i, t) in a.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || a.in_test(i) || a.allowed(RULE_DETERMINISM, t.line) {
            continue;
        }
        let name = t.text.as_str();
        if RANDOM_STATE_IDENTS.contains(&name) {
            report(
                out,
                t.line,
                format!(
                    "`{name}` uses a per-process random hasher whose iteration order \
                     varies between runs; use an2_sched::det::DetHashMap / DetHashSet \
                     (fixed-key SipHash) or a BTree collection"
                ),
            );
        } else if WALL_CLOCK_IDENTS.contains(&name) {
            report(
                out,
                t.line,
                format!(
                    "`{name}` reads a wall clock; deterministic crates must take time \
                     from the simulated slot counter, never the host"
                ),
            );
        } else if FOREIGN_RNG_IDENTS.contains(&name) {
            report(
                out,
                t.line,
                format!(
                    "`{name}` draws entropy outside an2_sched::rng; all randomness must \
                     come from seeded Xoshiro256 streams (task_seed-derived)"
                ),
            );
        } else if name == "std"
            && ident_path_next(a, i).is_some_and(|n| n == "env")
        {
            report(
                out,
                t.line,
                "`std::env` read; deterministic crates must receive configuration as \
                 arguments so a run is a pure function of its seed"
                    .to_string(),
            );
        } else if name == "rand" && is_path_sep(a, i + 1) {
            report(
                out,
                t.line,
                "external `rand` crate use; all randomness must come from \
                 an2_sched::rng"
                    .to_string(),
            );
        }
    }
}

/// If token `i` begins `X :: y`, returns `y`'s text.
fn ident_path_next(a: &FileAnalysis, i: usize) -> Option<&str> {
    if is_path_sep(a, i + 1) {
        let t = a.toks.get(i + 3)?;
        if t.kind == TokKind::Ident {
            return Some(&t.text);
        }
    }
    None
}

fn is_path_sep(a: &FileAnalysis, i: usize) -> bool {
    a.toks.get(i).is_some_and(|t| t.kind == TokKind::Punct(':'))
        && a.toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Punct(':'))
}

// ---------------------------------------------------------------------------
// Rule 1: alloc-in-hot-path
// ---------------------------------------------------------------------------

/// Types whose associated constructors allocate.
const ALLOC_TYPES: [&str; 8] = [
    "Vec", "Box", "String", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
];
/// Associated functions on [`ALLOC_TYPES`] that allocate or may allocate.
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];
/// Method names that allocate (or may grow) on heap-backed receivers.
const ALLOC_METHODS: [&str; 12] = [
    "push",
    "push_back",
    "push_front",
    "collect",
    "to_vec",
    "to_string",
    "to_owned",
    "clone",
    "extend",
    "reserve",
    "append",
    "resize",
];
/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// A call site extracted from a fn body.
#[derive(Debug)]
enum Call {
    /// `foo(…)` — a free function.
    Free(String),
    /// `Type::foo(…)` — an associated function (qualifier, name).
    Qualified(String, String),
    /// `x.foo(…)` — a method.
    Method(String),
}

fn check_hot_alloc(analyses: &[FileAnalysis], cfg: &Config, out: &mut Vec<Violation>) {
    // Domain: the configured hot files plus any file carrying a hot
    // annotation.
    let domain: Vec<&FileAnalysis> = analyses
        .iter()
        .filter(|a| {
            cfg.hot_files.contains(&a.path)
                || a.fns.iter().any(|f| f.hot_annotated)
        })
        .collect();
    if domain.is_empty() {
        return;
    }

    // Candidate fns: non-test, with a body, not marked cold.
    let mut fns: Vec<(usize, &FnItem)> = Vec::new(); // (domain file idx, fn)
    for (fi, a) in domain.iter().enumerate() {
        for f in &a.fns {
            if !f.in_test && f.body.is_some() && !f.cold_annotated {
                fns.push((fi, f));
            }
        }
    }

    // Indexes for call resolution.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_qualified: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (idx, (_, f)) in fns.iter().enumerate() {
        by_name.entry(&f.name).or_default().push(idx);
        match &f.impl_type {
            Some(ty) => by_qualified
                .entry((ty.as_str(), f.name.as_str()))
                .or_default()
                .push(idx),
            None => free_by_name.entry(&f.name).or_default().push(idx),
        }
    }

    // Seeds: `schedule()` in the configured hot files, plus annotations.
    let mut hot: BTreeSet<usize> = BTreeSet::new();
    let mut work: Vec<usize> = Vec::new();
    for (idx, (fi, f)) in fns.iter().enumerate() {
        let seeded = (cfg.hot_seed_fns.contains(&f.name)
            && cfg.hot_files.iter().any(|p| *p == domain[*fi].path))
            || f.hot_annotated;
        if seeded && hot.insert(idx) {
            work.push(idx);
        }
    }

    // Reachability closure over the name-resolved call graph.
    while let Some(idx) = work.pop() {
        let (fi, f) = fns[idx];
        let a = domain[fi];
        for call in body_calls(a, f) {
            let targets: Vec<usize> = match &call {
                Call::Method(name) => by_name.get(name.as_str()).cloned().unwrap_or_default(),
                Call::Free(name) => {
                    free_by_name.get(name.as_str()).cloned().unwrap_or_default()
                }
                Call::Qualified(q, name) => {
                    let q = if q == "Self" {
                        f.impl_type.as_deref().unwrap_or("Self")
                    } else {
                        q.as_str()
                    };
                    match by_qualified.get(&(q, name.as_str())) {
                        Some(v) => v.clone(),
                        // An unmatched qualifier may be a module path
                        // (`maximum::hopcroft_karp`); fall back to free fns.
                        None => free_by_name.get(name.as_str()).cloned().unwrap_or_default(),
                    }
                }
            };
            for t in targets {
                if hot.insert(t) {
                    work.push(t);
                }
            }
        }
    }

    // Scan every hot fn body for allocating constructs.
    for &idx in &hot {
        let (fi, f) = fns[idx];
        let a = domain[fi];
        let (open, close) = f.body.expect("hot candidates all have bodies");
        let mut i = open + 1;
        while i < close {
            let t = &a.toks[i];
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let next_is = |c: char| a.toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct(c));
            let name = t.text.as_str();
            let hit: Option<String> = if ALLOC_MACROS.contains(&name) && next_is('!') {
                Some(format!("allocating macro `{name}!`"))
            } else if ALLOC_TYPES.contains(&name)
                && is_path_sep(a, i + 1)
                && a.toks.get(i + 3).is_some_and(|m| {
                    m.kind == TokKind::Ident && ALLOC_CTORS.contains(&m.text.as_str())
                })
            {
                Some(format!(
                    "allocating constructor `{name}::{}`",
                    a.toks[i + 3].text
                ))
            } else if ALLOC_METHODS.contains(&name)
                && next_is('(')
                && i > open + 1
                && a.toks[i - 1].kind == TokKind::Punct('.')
            {
                Some(format!("allocating (or capacity-growing) call `.{name}()`"))
            } else {
                None
            };
            if let Some(what) = hit {
                if !a.allowed(RULE_HOT_ALLOC, t.line) {
                    out.push(violation(
                        RULE_HOT_ALLOC,
                        a,
                        t.line,
                        format!(
                            "{what} inside `{}`, which is reachable from `schedule()`; \
                             the scheduler hot path must stay zero-allocation (use a \
                             scratch buffer on self, or justify with \
                             `// an2-lint: allow({RULE_HOT_ALLOC})`)",
                            f.name
                        ),
                    ));
                }
            }
            i += 1;
        }
    }
}

/// Extracts the call sites of a fn body.
fn body_calls(a: &FileAnalysis, f: &FnItem) -> Vec<Call> {
    let (open, close) = f.body.expect("caller checked body presence");
    let mut calls = Vec::new();
    for i in open + 1..close {
        let t = &a.toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let followed_by_paren = a
            .toks
            .get(i + 1)
            .is_some_and(|n| n.kind == TokKind::Punct('('));
        if !followed_by_paren {
            continue;
        }
        let prev = |k: usize| a.toks.get(i.wrapping_sub(k));
        if prev(1).is_some_and(|p| p.kind == TokKind::Punct('.')) {
            calls.push(Call::Method(t.text.clone()));
        } else if prev(1).is_some_and(|p| p.kind == TokKind::Punct(':'))
            && prev(2).is_some_and(|p| p.kind == TokKind::Punct(':'))
            && prev(3).is_some_and(|p| p.kind == TokKind::Ident)
        {
            calls.push(Call::Qualified(
                prev(3).expect("checked").text.clone(),
                t.text.clone(),
            ));
        } else {
            calls.push(Call::Free(t.text.clone()));
        }
    }
    calls
}

fn violation(rule: &'static str, a: &FileAnalysis, line: u32, message: String) -> Violation {
    Violation {
        rule,
        file: a.path.clone(),
        line,
        snippet: a.snippet(line),
        message,
    }
}
