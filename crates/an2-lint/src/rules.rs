//! The seven invariant rules.
//!
//! Every rule reports [`Violation`]s with a stable rule name, the
//! workspace-relative file, a 1-based line and the offending source line, so
//! a failure in CI names exactly what to fix. Inline escapes use
//! `// an2-lint: allow(<rule>) — reason` on the offending line or the line
//! above; they are deliberately line-granular so each tolerated allocation
//! or collection carries its own justification in the diff. The fn-granular
//! rules (panic-freedom, overflow-discipline) additionally accept a
//! full-line allow comment directly above a fn, covering its whole body
//! with one named invariant — and for those two rules every allow *must*
//! carry justification text, or it does not suppress.

use crate::analyze::{FileAnalysis, SourceFile};
use crate::closure::{CallGraph, Closure};
use crate::config::Config;
use crate::lexer::TokKind;
use std::collections::BTreeSet;

/// Rule: no allocating calls in functions reachable from `schedule()`.
pub const RULE_HOT_ALLOC: &str = "alloc-in-hot-path";
/// Rule: no wall clocks, random hashers, env reads or foreign RNGs in
/// deterministic crates.
pub const RULE_DETERMINISM: &str = "determinism";
/// Rule: `unsafe` only in allowlisted files, always with a `// SAFETY:`
/// rationale.
pub const RULE_UNSAFE: &str = "unsafe-hygiene";
/// Rule: stdout belongs to `an2-repro` bins only (`--check` byte-identity).
pub const RULE_STDOUT: &str = "stdout-purity";
/// Rule: `Cargo.lock` may only contain allowlisted crates.
pub const RULE_DEPS: &str = "dependency-audit";
/// Rule: no `unwrap`/`expect`/panic-family macros/raw indexing in hot fns —
/// a degraded-input slot must degrade, not abort.
pub const RULE_PANIC: &str = "panic-freedom";
/// Rule: counter arithmetic in hot fns must be wrapping/saturating/checked
/// (or justified) so debug and release builds agree on overflow.
pub const RULE_OVERFLOW: &str = "overflow-discipline";

/// Every source-level rule name, in report order (for per-rule counts and
/// the SARIF rule table).
pub const ALL_RULES: [&str; 7] = [
    RULE_HOT_ALLOC,
    RULE_PANIC,
    RULE_OVERFLOW,
    RULE_DETERMINISM,
    RULE_UNSAFE,
    RULE_STDOUT,
    RULE_DEPS,
];

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule name (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Trimmed source line for the report.
    pub snippet: String,
    /// What is wrong and what to do instead.
    pub message: String,
}

/// Hot-closure size metrics for `results/LINT.json` and `--dump-closure`.
#[derive(Debug, Default, Clone)]
pub struct ClosureMetrics {
    /// Fns in the cross-crate (v2) closure.
    pub v2_fns: usize,
    /// Fns the PR 5 per-file (v1) closure would have seen.
    pub v1_fns: usize,
    /// Distinct files contributing fns to the v2 closure.
    pub v2_files: usize,
    /// Call edges followed while building the v2 closure.
    pub edges: usize,
    /// The v2 closure members as (file, line, qualified name, reached-via),
    /// sorted; `reached-via` names the first-discovery caller, or `seed`.
    pub hot_fns: Vec<(String, u32, String, String)>,
}

impl ClosureMetrics {
    /// v2-to-v1 fn-count ratio (how much hot code the old closure missed).
    pub fn ratio(&self) -> f64 {
        if self.v1_fns == 0 {
            return 0.0;
        }
        self.v2_fns as f64 / self.v1_fns as f64
    }
}

/// Everything one lint pass produces.
#[derive(Debug)]
pub struct LintOutcome {
    /// Sorted violations.
    pub violations: Vec<Violation>,
    /// Hot-closure metrics.
    pub closure: ClosureMetrics,
}

/// Runs the source-level rules over `files` (the dependency audit runs
/// separately via [`lint_lockfile`]). Results are sorted by file, line,
/// rule.
pub fn lint_files(files: &[SourceFile], cfg: &Config) -> Vec<Violation> {
    lint_files_full(files, cfg).violations
}

/// Like [`lint_files`], also returning the hot-closure metrics.
pub fn lint_files_full(files: &[SourceFile], cfg: &Config) -> LintOutcome {
    let analyses: Vec<FileAnalysis> = files.iter().map(FileAnalysis::new).collect();
    let mut out = Vec::new();
    for a in &analyses {
        check_unsafe(a, cfg, &mut out);
        check_stdout(a, cfg, &mut out);
        check_determinism(a, cfg, &mut out);
    }

    let graph = CallGraph::build(&analyses);
    let v2 = graph.closure(cfg, &cfg.hot_files, None);
    let v1 = graph.closure(
        cfg,
        &cfg.legacy_hot_files,
        Some(&cfg.legacy_hot_files),
    );
    check_hot_alloc(&graph, &v2, &mut out);
    check_panic_freedom(&graph, &v2, &mut out);
    check_overflow_discipline(&graph, &v2, &mut out);

    out.sort_by(|x, y| {
        (&x.file, x.line, x.rule).cmp(&(&y.file, y.line, y.rule))
    });
    out.dedup();

    let qualified = |idx: usize| {
        let f = graph.fn_of(idx);
        match &f.impl_type {
            Some(ty) => format!("{ty}::{}", f.name),
            None => f.name.clone(),
        }
    };
    let mut hot_fns: Vec<(String, u32, String, String)> = v2
        .hot
        .iter()
        .map(|&idx| {
            let a = graph.file_of(idx);
            let via = match v2.parents.get(&idx) {
                Some(&p) => qualified(p),
                None => "seed".to_string(),
            };
            (a.path.clone(), graph.fn_of(idx).line, qualified(idx), via)
        })
        .collect();
    hot_fns.sort();
    let v2_files: BTreeSet<&String> = hot_fns.iter().map(|(f, _, _, _)| f).collect();

    LintOutcome {
        violations: out,
        closure: ClosureMetrics {
            v2_fns: v2.hot.len(),
            v1_fns: v1.hot.len(),
            v2_files: v2_files.len(),
            edges: v2.edges,
            hot_fns,
        },
    }
}

/// Audits `Cargo.lock` against the dependency allowlist.
pub fn lint_lockfile(text: &str, cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut in_package = false;
    let mut current_name: Option<(String, u32)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if line == "[[package]]" {
            in_package = true;
            current_name = None;
            continue;
        }
        if line.starts_with('[') && line != "[[package]]" {
            in_package = false;
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some(name) = toml_str_value(line, "name") {
            if !cfg.deps_allowlist.contains(&name) {
                out.push(Violation {
                    rule: RULE_DEPS,
                    file: "Cargo.lock".to_string(),
                    line: line_no,
                    snippet: line.to_string(),
                    message: format!(
                        "crate `{name}` is not in lint/deps-allowlist.txt; the workspace \
                         builds offline from path dependencies only"
                    ),
                });
            }
            current_name = Some((name, line_no));
        } else if let Some(source) = toml_str_value(line, "source") {
            let name = current_name
                .as_ref()
                .map(|(n, _)| n.as_str())
                .unwrap_or("<unknown>");
            out.push(Violation {
                rule: RULE_DEPS,
                file: "Cargo.lock".to_string(),
                line: line_no,
                snippet: line.to_string(),
                message: format!(
                    "crate `{name}` resolves to external source `{source}`; every \
                     dependency must be an in-workspace path crate"
                ),
            });
        }
    }
    out
}

/// Extracts `value` from a `key = "value"` TOML line.
fn toml_str_value(line: &str, key: &str) -> Option<String> {
    let rest = line.strip_prefix(key)?.trim_start().strip_prefix('=')?;
    let rest = rest.trim();
    let rest = rest.strip_prefix('"')?;
    Some(rest.strip_suffix('"')?.to_string())
}

// ---------------------------------------------------------------------------
// File classification
// ---------------------------------------------------------------------------

fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.starts_with("examples/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

fn is_bin_path(path: &str) -> bool {
    path.ends_with("src/main.rs") || path.contains("/src/bin/")
}

// ---------------------------------------------------------------------------
// Rule 3: unsafe hygiene
// ---------------------------------------------------------------------------

fn check_unsafe(a: &FileAnalysis, cfg: &Config, out: &mut Vec<Violation>) {
    for t in &a.toks {
        if !(t.kind == TokKind::Ident && t.text == "unsafe") {
            continue;
        }
        if a.allowed(RULE_UNSAFE, t.line) {
            continue;
        }
        if !cfg.unsafe_allowlist.contains(&a.path) {
            out.push(violation(
                RULE_UNSAFE,
                a,
                t.line,
                "`unsafe` in a file not listed in lint/unsafe-allowlist.txt; the \
                 workspace is unsafe-free outside audited exceptions"
                    .to_string(),
            ));
        } else if !a.has_safety_comment(t.line) {
            out.push(violation(
                RULE_UNSAFE,
                a,
                t.line,
                "`unsafe` without a `// SAFETY:` rationale on the preceding line".to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: stdout purity
// ---------------------------------------------------------------------------

fn check_stdout(a: &FileAnalysis, cfg: &Config, out: &mut Vec<Violation>) {
    if is_bin_path(&a.path)
        || is_test_path(&a.path)
        || cfg
            .stdout_exempt_prefixes
            .iter()
            .any(|p| a.path.starts_with(p.as_str()))
    {
        return;
    }
    for (i, t) in a.toks.iter().enumerate() {
        let is_macro = t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "println" | "print" | "dbg")
            && a.toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct('!'));
        if !is_macro || a.in_test(i) || a.allowed(RULE_STDOUT, t.line) {
            continue;
        }
        out.push(violation(
            RULE_STDOUT,
            a,
            t.line,
            format!(
                "`{}!` outside an2-repro bins breaks the `--check` stdout byte-identity \
                 contract; report on stderr (`eprintln!`) or return data to the caller",
                t.text
            ),
        ));
    }
}

// ---------------------------------------------------------------------------
// Rule 2: determinism
// ---------------------------------------------------------------------------

const RANDOM_STATE_IDENTS: [&str; 5] =
    ["HashMap", "HashSet", "RandomState", "DefaultHashBuilder", "ahash"];
const WALL_CLOCK_IDENTS: [&str; 2] = ["Instant", "SystemTime"];
const FOREIGN_RNG_IDENTS: [&str; 5] =
    ["thread_rng", "from_entropy", "OsRng", "StdRng", "SmallRng"];

fn check_determinism(a: &FileAnalysis, cfg: &Config, out: &mut Vec<Violation>) {
    if is_test_path(&a.path)
        || !cfg.det_prefixes.iter().any(|p| a.path.starts_with(p.as_str()))
        || cfg.det_exempt_files.contains(&a.path)
    {
        return;
    }
    let report = |out: &mut Vec<Violation>, line: u32, message: String| {
        out.push(violation(RULE_DETERMINISM, a, line, message));
    };
    for (i, t) in a.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || a.in_test(i) || a.allowed(RULE_DETERMINISM, t.line) {
            continue;
        }
        let name = t.text.as_str();
        if RANDOM_STATE_IDENTS.contains(&name) {
            report(
                out,
                t.line,
                format!(
                    "`{name}` uses a per-process random hasher whose iteration order \
                     varies between runs; use an2_sched::det::DetHashMap / DetHashSet \
                     (fixed-key SipHash) or a BTree collection"
                ),
            );
        } else if WALL_CLOCK_IDENTS.contains(&name) {
            report(
                out,
                t.line,
                format!(
                    "`{name}` reads a wall clock; deterministic crates must take time \
                     from the simulated slot counter, never the host"
                ),
            );
        } else if FOREIGN_RNG_IDENTS.contains(&name) {
            report(
                out,
                t.line,
                format!(
                    "`{name}` draws entropy outside an2_sched::rng; all randomness must \
                     come from seeded Xoshiro256 streams (task_seed-derived)"
                ),
            );
        } else if name == "std"
            && ident_path_next(a, i).is_some_and(|n| n == "env")
        {
            report(
                out,
                t.line,
                "`std::env` read; deterministic crates must receive configuration as \
                 arguments so a run is a pure function of its seed"
                    .to_string(),
            );
        } else if name == "rand" && is_path_sep(a, i + 1) {
            report(
                out,
                t.line,
                "external `rand` crate use; all randomness must come from \
                 an2_sched::rng"
                    .to_string(),
            );
        }
    }
}

/// If token `i` begins `X :: y`, returns `y`'s text.
fn ident_path_next(a: &FileAnalysis, i: usize) -> Option<&str> {
    if is_path_sep(a, i + 1) {
        let t = a.toks.get(i + 3)?;
        if t.kind == TokKind::Ident {
            return Some(&t.text);
        }
    }
    None
}

fn is_path_sep(a: &FileAnalysis, i: usize) -> bool {
    a.toks.get(i).is_some_and(|t| t.kind == TokKind::Punct(':'))
        && a.toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Punct(':'))
}

// ---------------------------------------------------------------------------
// Rule 1: alloc-in-hot-path
// ---------------------------------------------------------------------------

/// Types whose associated constructors allocate.
const ALLOC_TYPES: [&str; 8] = [
    "Vec", "Box", "String", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
];
/// Associated functions on [`ALLOC_TYPES`] that allocate or may allocate.
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];
/// Method names that allocate (or may grow) on heap-backed receivers.
const ALLOC_METHODS: [&str; 12] = [
    "push",
    "push_back",
    "push_front",
    "collect",
    "to_vec",
    "to_string",
    "to_owned",
    "clone",
    "extend",
    "reserve",
    "append",
    "resize",
];
/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

fn check_hot_alloc(graph: &CallGraph<'_>, closure: &Closure, out: &mut Vec<Violation>) {
    for &idx in &closure.hot {
        let a = graph.file_of(idx);
        let f = graph.fn_of(idx);
        let (open, close) = f.body.expect("hot candidates all have bodies");
        let mut i = open + 1;
        while i < close {
            let t = &a.toks[i];
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let next_is = |c: char| a.toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct(c));
            let name = t.text.as_str();
            let hit: Option<String> = if ALLOC_MACROS.contains(&name) && next_is('!') {
                Some(format!("allocating macro `{name}!`"))
            } else if ALLOC_TYPES.contains(&name)
                && is_path_sep(a, i + 1)
                && a.toks.get(i + 3).is_some_and(|m| {
                    m.kind == TokKind::Ident && ALLOC_CTORS.contains(&m.text.as_str())
                })
            {
                Some(format!(
                    "allocating constructor `{name}::{}`",
                    a.toks[i + 3].text
                ))
            } else if ALLOC_METHODS.contains(&name)
                && next_is('(')
                && i > open + 1
                && a.toks[i - 1].kind == TokKind::Punct('.')
            {
                Some(format!("allocating (or capacity-growing) call `.{name}()`"))
            } else {
                None
            };
            if let Some(what) = hit {
                if !a.allowed(RULE_HOT_ALLOC, t.line) {
                    out.push(violation(
                        RULE_HOT_ALLOC,
                        a,
                        t.line,
                        format!(
                            "{what} inside `{}`, which is reachable from `schedule()`; \
                             the scheduler hot path must stay zero-allocation (use a \
                             scratch buffer on self, or justify with \
                             `// an2-lint: allow({RULE_HOT_ALLOC})`)",
                            f.name
                        ),
                    ));
                }
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 6: panic-freedom
// ---------------------------------------------------------------------------

/// Macros that abort the slot instead of degrading it. `debug_assert!` and
/// friends are deliberately absent: they compile out of release builds, so
/// they are this workspace's sanctioned way to *document* an invariant the
/// hot path relies on.
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords that may directly precede `[` without the bracket being an
/// index expression (`let [a, b] = …`, `return [x; 4]`, `&mut [T]`…).
const NONINDEX_KEYWORDS: [&str; 16] = [
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "as", "break",
    "continue", "loop", "while", "for", "where",
];

fn check_panic_freedom(graph: &CallGraph<'_>, closure: &Closure, out: &mut Vec<Violation>) {
    for &idx in &closure.hot {
        let a = graph.file_of(idx);
        let f = graph.fn_of(idx);
        if f.allows_for_body(RULE_PANIC) {
            continue;
        }
        let (open, close) = f.body.expect("hot candidates all have bodies");
        let report = |out: &mut Vec<Violation>, line: u32, what: String| {
            if !a.allowed_reasoned(RULE_PANIC, line) {
                out.push(violation(
                    RULE_PANIC,
                    a,
                    line,
                    format!(
                        "{what} inside hot fn `{}`: a degraded input would abort the \
                         slot instead of degrading it; restructure (e.g. `get`-based \
                         access), guard with a `debug_assert!`, or justify with \
                         `// an2-lint: allow({RULE_PANIC}) <invariant>`",
                        f.name
                    ),
                ));
            }
        };
        for i in open + 1..close {
            let t = &a.toks[i];
            match t.kind {
                TokKind::Ident => {
                    let next = a.toks.get(i + 1);
                    if PANIC_MACROS.contains(&t.text.as_str())
                        && next.is_some_and(|n| n.kind == TokKind::Punct('!'))
                    {
                        report(out, t.line, format!("aborting macro `{}!`", t.text));
                    } else if matches!(t.text.as_str(), "unwrap" | "expect")
                        && next.is_some_and(|n| n.kind == TokKind::Punct('('))
                        && i > open + 1
                        && a.toks[i - 1].kind == TokKind::Punct('.')
                    {
                        report(out, t.line, format!("panicking call `.{}()`", t.text));
                    }
                }
                TokKind::Punct('[') => {
                    // Raw index/slice expressions panic out of bounds. The
                    // bracket is an index expression iff it directly follows
                    // a value: an identifier (not a keyword), a literal
                    // (`tuple.0[i]`), `)` or `]`.
                    let is_index = match a.toks.get(i.wrapping_sub(1)) {
                        Some(p) if i > open + 1 => match p.kind {
                            TokKind::Ident => !NONINDEX_KEYWORDS.contains(&p.text.as_str()),
                            TokKind::Lit => true,
                            TokKind::Punct(')') | TokKind::Punct(']') => true,
                            _ => false,
                        },
                        _ => false,
                    };
                    if is_index {
                        report(out, t.line, "raw `[…]` indexing".to_string());
                    }
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 7: overflow-discipline
// ---------------------------------------------------------------------------

/// Name fragments that mark an identifier as a counter — state that
/// accumulates across slots, where debug overflow aborts while release
/// silently wraps. Matched against `_`-separated pieces of the identifier.
const COUNTER_WORDS: [&str; 30] = [
    "count", "counts", "counter", "counters", "total", "totals", "seq", "slot", "slots",
    "tick", "ticks", "drop", "drops", "dropped", "admitted", "departed", "injected",
    "delivered", "arrival", "arrivals", "departure", "departures", "occupancy", "backlog",
    "age", "ages", "depth", "depths", "credit", "credits",
];

fn is_counter_ident(name: &str) -> bool {
    name.split('_').any(|piece| {
        let lower = piece.to_ascii_lowercase();
        COUNTER_WORDS.contains(&lower.as_str())
    })
}

fn check_overflow_discipline(graph: &CallGraph<'_>, closure: &Closure, out: &mut Vec<Violation>) {
    for &idx in &closure.hot {
        let a = graph.file_of(idx);
        let f = graph.fn_of(idx);
        if f.allows_for_body(RULE_OVERFLOW) {
            continue;
        }
        let (open, close) = f.body.expect("hot candidates all have bodies");
        // Arithmetic inside `debug_assert*!`/panic-macro arguments is
        // invariant documentation, not slot-loop state: skip those groups
        // (the panic macros themselves are already panic-freedom findings).
        let skip = macro_arg_ranges(a, open, close);
        let in_skip = |i: usize| skip.iter().any(|&(s, e)| i > s && i < e);
        let report = |out: &mut Vec<Violation>, line: u32, what: String| {
            if !a.allowed_reasoned(RULE_OVERFLOW, line) {
                out.push(violation(
                    RULE_OVERFLOW,
                    a,
                    line,
                    format!(
                        "{what} inside hot fn `{}`: debug builds abort on overflow where \
                         release silently wraps, so checked and unchecked runs can \
                         diverge; use `wrapping_*`/`saturating_*`/`checked_*`, or \
                         justify with `// an2-lint: allow({RULE_OVERFLOW}) <invariant>`",
                        f.name
                    ),
                ));
            }
        };
        for i in open + 1..close {
            let op = match a.toks[i].kind {
                TokKind::Punct(c @ ('+' | '-' | '*')) => c,
                _ => continue,
            };
            if in_skip(i) {
                continue;
            }
            let next = a.toks.get(i + 1);
            // `->` is an arrow, not a subtraction.
            if op == '-' && next.is_some_and(|n| n.kind == TokKind::Punct('>')) {
                continue;
            }
            if next.is_some_and(|n| n.kind == TokKind::Punct('=')) {
                // Compound assignment: accumulation by definition.
                report(
                    out,
                    a.toks[i].line,
                    format!("compound `{op}=` accumulation"),
                );
                continue;
            }
            // Bare binary operator: only when an adjacent operand is a
            // counter-named identifier. A non-value predecessor means the
            // token is unary (negation, deref, reference) — skip.
            let prev_is_value = i > open + 1
                && match &a.toks[i - 1].kind {
                    TokKind::Ident => !NONINDEX_KEYWORDS.contains(&a.toks[i - 1].text.as_str()),
                    TokKind::Lit => true,
                    TokKind::Punct(')') | TokKind::Punct(']') => true,
                    _ => false,
                };
            if !prev_is_value {
                continue;
            }
            let left_counter = operand_ident_back(a, i).is_some_and(is_counter_ident);
            let right_counter = operand_ident_fwd(a, i, close).is_some_and(is_counter_ident);
            if left_counter || right_counter {
                report(out, a.toks[i].line, format!("bare `{op}` on a counter"));
            }
        }
    }
}

/// Token ranges `(open_paren, close_paren)` of `debug_assert*!`/panic-macro
/// invocations within a body.
fn macro_arg_ranges(a: &FileAnalysis, open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in open + 1..close {
        let t = &a.toks[i];
        let is_doc_macro = t.kind == TokKind::Ident
            && (t.text.starts_with("debug_assert") || PANIC_MACROS.contains(&t.text.as_str()));
        if is_doc_macro
            && a.toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct('!'))
        {
            if let Some(d) = a.toks.get(i + 2) {
                if matches!(d.kind, TokKind::Punct('(' | '[')) {
                    let m = a.match_of[i + 2];
                    if m != usize::MAX {
                        out.push((i + 2, m));
                    }
                }
            }
        }
    }
    out
}

/// The identifier naming the operand that ends just before token `i`
/// (walking back over one `[…]` index group to the indexed name).
fn operand_ident_back(a: &FileAnalysis, i: usize) -> Option<&str> {
    let prev = a.toks.get(i.wrapping_sub(1))?;
    match prev.kind {
        TokKind::Ident => Some(&prev.text),
        TokKind::Punct(']') => {
            let open = a.match_of.get(i - 1).copied()?;
            if open == usize::MAX {
                return None;
            }
            let before = a.toks.get(open.wrapping_sub(1))?;
            (before.kind == TokKind::Ident).then_some(before.text.as_str())
        }
        _ => None,
    }
}

/// The identifier naming the operand that starts just after token `i`,
/// following `a.b.c` field chains to the final field name.
fn operand_ident_fwd(a: &FileAnalysis, i: usize, close: usize) -> Option<&str> {
    let mut j = i + 1;
    let mut last: Option<&str> = None;
    while j < close {
        match a.toks[j].kind {
            TokKind::Ident => {
                last = Some(&a.toks[j].text);
                if a.toks.get(j + 1).is_some_and(|n| n.kind == TokKind::Punct('.'))
                    && a.toks.get(j + 2).is_some_and(|n| n.kind == TokKind::Ident)
                {
                    j += 2;
                    continue;
                }
                break;
            }
            _ => break,
        }
    }
    last
}

fn violation(rule: &'static str, a: &FileAnalysis, line: u32, message: String) -> Violation {
    Violation {
        rule,
        file: a.path.clone(),
        line,
        snippet: a.snippet(line),
        message,
    }
}
