//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p an2-lint [-- --root PATH] [--fix-baseline] [--quiet]
//!                       [--sarif PATH] [--dump-closure]
//! ```
//!
//! Exit codes: 0 = clean, 1 = violations, 2 = configuration/usage error.
//! The machine-readable report always lands in `results/LINT.json` (v2:
//! per-rule counts plus closure metrics); `--sarif PATH` also writes a
//! SARIF 2.1.0 log and `--dump-closure` prints every hot fn.

use an2_lint::{
    apply_baseline, collect_files, config::baseline_line, default_root, lint_files_full,
    lint_lockfile, report, Config,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    fix_baseline: bool,
    quiet: bool,
    sarif: Option<PathBuf>,
    dump_closure: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: default_root(),
        fix_baseline: false,
        quiet: false,
        sarif: None,
        dump_closure: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                args.root = PathBuf::from(v);
            }
            "--fix-baseline" => args.fix_baseline = true,
            "--quiet" => args.quiet = true,
            "--sarif" => {
                let v = it.next().ok_or("--sarif needs a path")?;
                args.sarif = Some(PathBuf::from(v));
            }
            "--dump-closure" => args.dump_closure = true,
            "--help" | "-h" => {
                return Err(
                    "usage: an2-lint [--root PATH] [--fix-baseline] [--quiet] \
                     [--sarif PATH] [--dump-closure]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("an2-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("an2-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &Args) -> Result<bool, String> {
    let root = &args.root;
    let cfg = Config::load(root)?;

    let files = collect_files(root, &cfg).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let files_scanned = files.len();
    let outcome = lint_files_full(&files, &cfg);
    let closure = outcome.closure;
    let mut violations = outcome.violations;

    if args.dump_closure {
        println!(
            "an2-lint: hot closure — {} fn(s) across {} file(s), {} edge(s) \
             (v1 per-file closure: {} fn(s), ratio {:.2})",
            closure.v2_fns,
            closure.v2_files,
            closure.edges,
            closure.v1_fns,
            closure.ratio(),
        );
        for (file, line, name, via) in &closure.hot_fns {
            println!("  {file}:{line}  {name}  (via {via})");
        }
    }

    let lock_path = root.join("Cargo.lock");
    let lock = std::fs::read_to_string(&lock_path)
        .map_err(|e| format!("cannot read {}: {e}", lock_path.display()))?;
    violations.extend(lint_lockfile(&lock, &cfg));

    if args.fix_baseline {
        let mut text = String::from(
            "# an2-lint baseline: violations tolerated until fixed.\n\
             # Regenerate with `cargo run -p an2-lint -- --fix-baseline`.\n\
             # Keep this file empty: a non-empty baseline is debt, not policy.\n",
        );
        for v in &violations {
            text.push_str(&baseline_line(v.rule, &v.file, v.line));
            text.push('\n');
        }
        let path = root.join("lint/baseline.txt");
        std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "an2-lint: wrote {} baseline entr{} to lint/baseline.txt",
            violations.len(),
            if violations.len() == 1 { "y" } else { "ies" }
        );
        return Ok(true);
    }

    let (violations, suppressed) = apply_baseline(violations, &cfg.baseline);

    let json = report::to_json(&violations, files_scanned, suppressed, &closure);
    let results_dir = root.join("results");
    std::fs::create_dir_all(&results_dir)
        .map_err(|e| format!("creating {}: {e}", results_dir.display()))?;
    let report_path = results_dir.join("LINT.json");
    std::fs::write(&report_path, json)
        .map_err(|e| format!("writing {}: {e}", report_path.display()))?;

    if let Some(sarif_path) = &args.sarif {
        let sarif = report::to_sarif(&violations);
        if let Some(dir) = sarif_path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating {}: {e}", dir.display()))?;
            }
        }
        std::fs::write(sarif_path, sarif)
            .map_err(|e| format!("writing {}: {e}", sarif_path.display()))?;
    }

    if !args.quiet {
        for v in &violations {
            println!("{}", report::human_line(v));
        }
    }
    let status = if violations.is_empty() { "clean" } else { "FAILED" };
    println!(
        "an2-lint: {status} — {} file(s) scanned, {} violation(s){} (report: results/LINT.json)",
        files_scanned,
        violations.len(),
        if suppressed > 0 {
            format!(", {suppressed} baseline-suppressed")
        } else {
            String::new()
        },
    );
    Ok(violations.is_empty())
}
