//! Per-file structural analysis on top of the token stream.
//!
//! The rules need more than raw tokens: which tokens sit inside
//! `#[cfg(test)]` items, which `fn` bodies exist (and in which `impl`), and
//! which lines carry `// an2-lint:` annotations or `// SAFETY:` rationales.
//! This module computes all of that once per file.

use crate::lexer::{lex, Tok, TokKind};
use std::collections::BTreeMap;

/// A source file handed to the linter, with a workspace-relative path.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// Full file contents.
    pub src: String,
}

/// A `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The self type of the innermost enclosing `impl`, if any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range `[open, close]` of the `{…}` body, if the fn has
    /// one (trait method declarations do not).
    pub body: Option<(usize, usize)>,
    /// Whether the fn sits inside a `#[cfg(test)]`/`#[test]` region.
    pub in_test: bool,
    /// Whether a `// an2-lint: hot` comment marks this fn as a hot-path
    /// seed.
    pub hot_annotated: bool,
    /// Whether a `// an2-lint: cold` comment excludes this fn from the
    /// hot-path closure.
    pub cold_annotated: bool,
    /// Rules suppressed for this fn's *whole body* by a full-line
    /// `// an2-lint: allow(…) reason` comment directly above the fn.
    /// Only the fn-granular rules (panic-freedom, overflow-discipline)
    /// consult this; the line-granular rules ignore it.
    pub fn_allows: Vec<AllowEntry>,
}

/// One rule named by an `// an2-lint: allow(…)` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The suppressed rule's name.
    pub rule: String,
    /// Whether justification text follows the closing `)` — the
    /// panic-freedom and overflow-discipline rules require the invariant
    /// to be named, so an unreasoned allow does not suppress them.
    pub reasoned: bool,
}

impl FnItem {
    /// Is `rule` suppressed (with justification) for this fn's whole body?
    pub fn allows_for_body(&self, rule: &str) -> bool {
        self.fn_allows.iter().any(|e| e.rule == rule && e.reasoned)
    }
}

/// Everything the rules need to know about one file.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Workspace-relative path.
    pub path: String,
    /// Significant tokens.
    pub toks: Vec<Tok>,
    /// Raw source lines (for snippets).
    pub lines: Vec<String>,
    /// For each token index holding an open/close delimiter, the index of
    /// its partner; `usize::MAX` elsewhere or when unbalanced.
    pub match_of: Vec<usize>,
    /// Token-index ranges (inclusive) covering test-only items.
    pub test_ranges: Vec<(usize, usize)>,
    /// All `fn` items in the file.
    pub fns: Vec<FnItem>,
    /// Lines on which a given rule is suppressed by `// an2-lint: allow(…)`.
    pub allows: BTreeMap<u32, Vec<AllowEntry>>,
    /// Concatenated comment text per source line (for `SAFETY:` lookups).
    pub comment_on_line: BTreeMap<u32, String>,
}

impl FileAnalysis {
    /// Analyzes one source file.
    pub fn new(file: &SourceFile) -> Self {
        let lexed = lex(&file.src);
        let toks = lexed.toks;
        let lines: Vec<String> = file.src.lines().map(str::to_string).collect();
        let match_of = match_delims(&toks);
        let test_ranges = find_test_ranges(&toks, &match_of);

        let mut comment_on_line: BTreeMap<u32, String> = BTreeMap::new();
        let mut allows: BTreeMap<u32, Vec<AllowEntry>> = BTreeMap::new();
        let mut hot_lines = Vec::new();
        let mut cold_lines = Vec::new();
        // Full-line allow comments (nothing but the comment on the line):
        // candidates for fn-scope suppression when a fn follows directly.
        let mut fn_allow_lines: Vec<(u32, Vec<AllowEntry>)> = Vec::new();
        for c in &lexed.comments {
            for l in c.line..=c.end_line {
                comment_on_line.entry(l).or_default().push_str(&c.text);
            }
            if let Some(entries) = parse_allow(&c.text) {
                // A trailing comment suppresses its own line; a comment on
                // its own line suppresses the next one.
                for e in &entries {
                    allows.entry(c.line).or_default().push(e.clone());
                    allows.entry(c.end_line + 1).or_default().push(e.clone());
                }
                let own_line = lines
                    .get(c.line as usize - 1)
                    .is_some_and(|l| l.trim_start().starts_with("//"));
                if own_line {
                    fn_allow_lines.push((c.end_line, entries));
                }
            }
            if c.text.contains("an2-lint: hot") {
                hot_lines.push(c.end_line);
            }
            if c.text.contains("an2-lint: cold") {
                cold_lines.push(c.end_line);
            }
        }

        let mut fns = find_fns(&toks, &match_of, &test_ranges);
        for &l in &hot_lines {
            mark_next_fn(&mut fns, l, true);
        }
        for &l in &cold_lines {
            mark_next_fn(&mut fns, l, false);
        }
        for (l, entries) in fn_allow_lines {
            attach_fn_allows(&mut fns, l, entries);
        }

        Self {
            path: file.path.clone(),
            toks,
            lines,
            match_of,
            test_ranges,
            fns,
            allows,
            comment_on_line,
        }
    }

    /// Is token index `i` inside a test-only item?
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| i >= a && i <= b)
    }

    /// Is `rule` suppressed on `line` by an `an2-lint: allow(…)` comment?
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|rs| rs.iter().any(|r| r.rule == rule))
    }

    /// Like [`FileAnalysis::allowed`], but the allow must carry
    /// justification text after the `)` — required by the rules whose
    /// escapes must name an invariant.
    pub fn allowed_reasoned(&self, rule: &str, line: u32) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|rs| rs.iter().any(|r| r.rule == rule && r.reasoned))
    }

    /// The trimmed source text of a 1-based line, truncated for reports.
    pub fn snippet(&self, line: u32) -> String {
        let mut s = self
            .lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default();
        if s.len() > 120 {
            s.truncate(117);
            s.push_str("...");
        }
        s
    }

    /// Walks comment lines upward from `line` (inclusive) looking for a
    /// `SAFETY:` rationale; stops at the first line that carries no comment.
    pub fn has_safety_comment(&self, line: u32) -> bool {
        // The unsafe token's own line may carry a trailing `// SAFETY:`.
        if self
            .comment_on_line
            .get(&line)
            .is_some_and(|t| t.contains("SAFETY:"))
        {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            match self.comment_on_line.get(&l) {
                Some(t) if t.contains("SAFETY:") => return true,
                // Attribute lines between the comment and the `unsafe`
                // keyword (e.g. `#[target_feature(...)]`) keep the walk
                // alive.
                Some(_) => {}
                None => {
                    let trimmed = self
                        .lines
                        .get(l as usize - 1)
                        .map(|s| s.trim())
                        .unwrap_or("");
                    if !(trimmed.starts_with("#[") || trimmed.starts_with("#![")) {
                        return false;
                    }
                }
            }
            l -= 1;
        }
        false
    }
}

/// Extracts rule names (and whether a justification follows) from an
/// `// an2-lint: allow(rule, rule) why it is sound` comment.
fn parse_allow(text: &str) -> Option<Vec<AllowEntry>> {
    let at = text.find("an2-lint: allow(")?;
    let rest = &text[at + "an2-lint: allow(".len()..];
    let close = rest.find(')')?;
    let reason = rest[close + 1..]
        .trim_start_matches([' ', '\t', '-', '—', ':'])
        .trim();
    let reasoned = !reason.is_empty();
    Some(
        rest[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .map(|rule| AllowEntry { rule, reasoned })
            .collect(),
    )
}

/// Marks the first fn at or after `line` as hot (or cold).
fn mark_next_fn(fns: &mut [FnItem], line: u32, hot: bool) {
    // The annotation must sit within a few lines of the fn it marks so a
    // stray comment cannot silently annotate something far away.
    if let Some(f) = fns
        .iter_mut()
        .filter(|f| f.line >= line && f.line <= line + 8)
        .min_by_key(|f| f.line)
    {
        if hot {
            f.hot_annotated = true;
        } else {
            f.cold_annotated = true;
        }
    }
}

/// Attaches a full-line allow comment at `line` to the fn that directly
/// follows it (same proximity window as hot/cold annotations), suppressing
/// the named rules across the fn's whole body. The fn-granular rules use
/// this for per-fn invariants ("all indices < n, debug_assert-guarded at
/// entry") that would otherwise need a comment on every line.
fn attach_fn_allows(fns: &mut [FnItem], line: u32, entries: Vec<AllowEntry>) {
    if let Some(f) = fns
        .iter_mut()
        .filter(|f| f.line >= line && f.line <= line + 8)
        .min_by_key(|f| f.line)
    {
        f.fn_allows.extend(entries);
    }
}

/// Pairs up `(`/`)`, `[`/`]`, `{`/`}` tokens.
fn match_delims(toks: &[Tok]) -> Vec<usize> {
    let mut match_of = vec![usize::MAX; toks.len()];
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Punct(c @ ('(' | '[' | '{')) => stack.push((c, i)),
            TokKind::Punct(c @ (')' | ']' | '}')) => {
                let open = match c {
                    ')' => '(',
                    ']' => '[',
                    _ => '{',
                };
                // Pop to the nearest matching opener; unbalanced input
                // (malformed code) just leaves entries unmatched.
                while let Some((oc, oi)) = stack.pop() {
                    if oc == open {
                        match_of[oi] = i;
                        match_of[i] = oi;
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    match_of
}

fn is_punct(t: &Tok, c: char) -> bool {
    t.kind == TokKind::Punct(c)
}

fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Finds token ranges covered by `#[test]`-like or `#[cfg(test)]` items.
fn find_test_ranges(toks: &[Tok], match_of: &[usize]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        // Outer attribute `#[…]` (not the inner `#![…]`).
        if is_punct(&toks[i], '#') && is_punct(&toks[i + 1], '[') {
            let open = i + 1;
            let close = match_of[open];
            if close == usize::MAX {
                i += 1;
                continue;
            }
            let mentions_test = toks[open + 1..close]
                .iter()
                .any(|t| is_ident(t, "test") || is_ident(t, "tests"));
            if mentions_test {
                if let Some(range) = attribute_target_body(toks, match_of, close + 1) {
                    ranges.push(range);
                    i = range.1 + 1;
                    continue;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

/// From the token just after an attribute, finds the `{…}` body of the item
/// the attribute decorates, skipping further attributes and signature
/// tokens (and balanced `(…)`/`[…]` groups inside the signature).
fn attribute_target_body(
    toks: &[Tok],
    match_of: &[usize],
    mut i: usize,
) -> Option<(usize, usize)> {
    while i < toks.len() {
        if is_punct(&toks[i], '#') && i + 1 < toks.len() && is_punct(&toks[i + 1], '[') {
            let close = match_of[i + 1];
            if close == usize::MAX {
                return None;
            }
            i = close + 1;
            continue;
        }
        match toks[i].kind {
            TokKind::Punct('{') => {
                let close = match_of[i];
                if close == usize::MAX {
                    return None;
                }
                return Some((i, close));
            }
            TokKind::Punct(';') => return None,
            TokKind::Punct('(' | '[') => {
                let close = match_of[i];
                if close == usize::MAX {
                    return None;
                }
                i = close + 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// Finds every `fn` item, resolving the innermost `impl` self type.
fn find_fns(toks: &[Tok], match_of: &[usize], test_ranges: &[(usize, usize)]) -> Vec<FnItem> {
    // First collect impl body ranges with their self types.
    let mut impls: Vec<(String, (usize, usize))> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_ident(&toks[i], "impl") {
            if let Some((ty, body)) = parse_impl_header(toks, match_of, i) {
                impls.push((ty, body));
            }
        }
        i += 1;
    }

    let in_test =
        |idx: usize| -> bool { test_ranges.iter().any(|&(a, b)| idx >= a && idx <= b) };

    let mut fns = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if is_ident(&toks[i], "fn") && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            let body = fn_body(toks, match_of, i + 2);
            let impl_type = impls
                .iter()
                .filter(|(_, (a, b))| i > *a && i < *b)
                .min_by_key(|(_, (a, b))| b - a)
                .map(|(ty, _)| ty.clone());
            fns.push(FnItem {
                name,
                impl_type,
                line,
                body,
                in_test: in_test(i),
                hot_annotated: false,
                cold_annotated: false,
                fn_allows: Vec::new(),
            });
        }
        i += 1;
    }
    fns
}

/// From the token after a fn's name, finds its `{…}` body (or `None` for a
/// bodyless trait-method declaration).
fn fn_body(toks: &[Tok], match_of: &[usize], mut i: usize) -> Option<(usize, usize)> {
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('{') => {
                let close = match_of[i];
                if close == usize::MAX {
                    return None;
                }
                return Some((i, close));
            }
            TokKind::Punct(';') => return None,
            TokKind::Punct('(' | '[') => {
                let close = match_of[i];
                if close == usize::MAX {
                    return None;
                }
                i = close + 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// Parses `impl … {` starting at the `impl` token: returns the self type
/// name and the body token range.
fn parse_impl_header(
    toks: &[Tok],
    match_of: &[usize],
    impl_idx: usize,
) -> Option<(String, (usize, usize))> {
    let mut i = impl_idx + 1;
    let mut angle_depth = 0i32;
    let mut last_ident: Option<String> = None;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('<') => angle_depth += 1,
            TokKind::Punct('>') => angle_depth -= 1,
            TokKind::Punct('{') => {
                let close = match_of[i];
                if close == usize::MAX {
                    return None;
                }
                return last_ident.map(|ty| (ty, (i, close)));
            }
            TokKind::Punct(';') => return None,
            TokKind::Punct('(' | '[') => {
                // Tuple/array self types like `impl Trait for (A, B)`;
                // skip the group wholesale.
                let close = match_of[i];
                if close == usize::MAX {
                    return None;
                }
                i = close + 1;
                continue;
            }
            TokKind::Ident if angle_depth == 0 => {
                let t = &toks[i].text;
                if t == "for" {
                    last_ident = None; // the self type follows `for`
                } else if t == "where" {
                    // Type name is fixed by now; skip to the body.
                } else if t != "dyn" && t != "impl" && t != "crate" && t != "super" && t != "self"
                {
                    last_ident = Some(t.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> FileAnalysis {
        FileAnalysis::new(&SourceFile {
            path: "crates/demo/src/lib.rs".into(),
            src: src.into(),
        })
    }

    #[test]
    fn fns_and_impl_types_are_found() {
        let a = analyze(
            "struct Foo;\n\
             impl Foo { fn new() -> Self { Foo } fn go(&self) {} }\n\
             impl<T: Clone> Bar for Foo { fn schedule(&mut self) {} }\n\
             fn free() {}\n\
             trait T { fn decl(&self); }\n",
        );
        let by_name = |n: &str| a.fns.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by_name("new").impl_type.as_deref(), Some("Foo"));
        assert_eq!(by_name("go").impl_type.as_deref(), Some("Foo"));
        assert_eq!(by_name("schedule").impl_type.as_deref(), Some("Foo"));
        assert_eq!(by_name("free").impl_type, None);
        assert!(by_name("decl").body.is_none());
        assert!(by_name("free").body.is_some());
    }

    #[test]
    fn cfg_test_regions_cover_their_items() {
        let a = analyze(
            "fn prod() { hot(); }\n\
             #[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn case() {}\n}\n",
        );
        let helper = a.fns.iter().find(|f| f.name == "helper").unwrap();
        let case = a.fns.iter().find(|f| f.name == "case").unwrap();
        let prod = a.fns.iter().find(|f| f.name == "prod").unwrap();
        assert!(helper.in_test);
        assert!(case.in_test);
        assert!(!prod.in_test);
    }

    #[test]
    fn annotations_attach_to_the_next_fn() {
        let a = analyze(
            "// an2-lint: hot\nfn fast() {}\n\n// an2-lint: cold\n#[inline]\nfn slow() {}\nfn plain() {}\n",
        );
        let by_name = |n: &str| a.fns.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("fast").hot_annotated);
        assert!(by_name("slow").cold_annotated);
        assert!(!by_name("plain").hot_annotated && !by_name("plain").cold_annotated);
    }

    #[test]
    fn allow_comments_suppress_their_line_and_the_next() {
        let a = analyze(
            "fn f() {\n    x.push(1); // an2-lint: allow(alloc-in-hot-path)\n    // an2-lint: allow(determinism) -- reason\n    let m = 0;\n}\n",
        );
        assert!(a.allowed("alloc-in-hot-path", 2));
        assert!(a.allowed("determinism", 4));
        assert!(!a.allowed("determinism", 5));
    }

    #[test]
    fn safety_walks_through_comments_and_attributes() {
        let a = analyze(
            "// SAFETY: the feature was probed at runtime.\n\
             #[target_feature(enable = \"bmi2\")]\n\
             unsafe fn fast() {}\n\
             \n\
             unsafe fn bare() {}\n\
             fn g() { unsafe { core() } } // SAFETY: trailing rationale\n",
        );
        assert!(a.has_safety_comment(3));
        assert!(!a.has_safety_comment(5));
        assert!(a.has_safety_comment(6));
    }
}
