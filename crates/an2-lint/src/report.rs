//! Machine-readable reports (`results/LINT.json` v2, SARIF 2.1.0) and
//! human diagnostics.

use crate::rules::{ClosureMetrics, Violation, ALL_RULES};
use std::fmt::Write as _;

/// Serializes the lint outcome as the `results/LINT.json` document,
/// version 2 schema: scan counters, **per-rule counts** over [`ALL_RULES`],
/// **closure metrics** (v2/v1 fn counts, ratio, files, edges), and the
/// violation list. Violations must already be sorted; the writer preserves
/// order so the report is byte-stable for a given tree.
pub fn to_json(
    violations: &[Violation],
    files_scanned: usize,
    baseline_suppressed: usize,
    closure: &ClosureMetrics,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"version\": 2,");
    let _ = writeln!(s, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(s, "  \"baseline_suppressed\": {baseline_suppressed},");
    let _ = writeln!(s, "  \"violation_count\": {},", violations.len());
    s.push_str("  \"rule_counts\": {");
    for (i, rule) in ALL_RULES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let n = violations.iter().filter(|v| v.rule == *rule).count();
        let _ = write!(s, "\n    \"{}\": {n}", esc(rule));
    }
    s.push_str("\n  },\n");
    s.push_str("  \"closure\": {");
    let _ = write!(s, "\n    \"v2_fns\": {},", closure.v2_fns);
    let _ = write!(s, "\n    \"v1_fns\": {},", closure.v1_fns);
    let _ = write!(s, "\n    \"v2_over_v1_ratio\": {:.3},", closure.ratio());
    let _ = write!(s, "\n    \"v2_files\": {},", closure.v2_files);
    let _ = write!(s, "\n    \"edges\": {}", closure.edges);
    s.push_str("\n  },\n");
    s.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        let _ = write!(s, "\"rule\": \"{}\", ", esc(v.rule));
        let _ = write!(s, "\"file\": \"{}\", ", esc(&v.file));
        let _ = write!(s, "\"line\": {}, ", v.line);
        let _ = write!(s, "\"snippet\": \"{}\", ", esc(&v.snippet));
        let _ = write!(s, "\"message\": \"{}\"", esc(&v.message));
        s.push('}');
    }
    if !violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Short SARIF rule descriptions, aligned with [`ALL_RULES`] order.
fn rule_description(rule: &str) -> &'static str {
    match rule {
        "alloc-in-hot-path" => {
            "No allocating calls in functions reachable from schedule(): the \
             scheduler must decide every cell slot in bounded time."
        }
        "panic-freedom" => {
            "No unwrap/expect/panic-family macros/raw indexing in hot \
             functions: a degraded-input slot must degrade, not abort."
        }
        "overflow-discipline" => {
            "Counter arithmetic in hot functions must be wrapping, \
             saturating or checked so debug and release agree on overflow."
        }
        "determinism" => {
            "No wall clocks, random-state hashers, env reads or foreign \
             RNGs in the deterministic crates."
        }
        "unsafe-hygiene" => {
            "unsafe only in allowlisted files, each occurrence with a \
             SAFETY rationale."
        }
        "stdout-purity" => {
            "stdout belongs to bin targets only (protects --check \
             byte-identity)."
        }
        "dependency-audit" => "Cargo.lock may only contain allowlisted crates.",
        _ => "an2-lint rule.",
    }
}

/// Serializes violations as a SARIF 2.1.0 log (one run, one tool driver,
/// every rule in the rule table, one `result` per violation with a
/// `physicalLocation` region at the offending line). GitHub code scanning
/// and most SARIF viewers can annotate PR diffs from this directly.
pub fn to_sarif(violations: &[Violation]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\","
    );
    let _ = writeln!(s, "  \"version\": \"2.1.0\",");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    let _ = writeln!(s, "          \"name\": \"an2-lint\",");
    let _ = writeln!(
        s,
        "          \"informationUri\": \"https://github.com/an2-repro/an2-repro\","
    );
    s.push_str("          \"rules\": [");
    for (i, rule) in ALL_RULES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n            {");
        let _ = write!(s, "\"id\": \"{}\", ", esc(rule));
        let _ = write!(
            s,
            "\"shortDescription\": {{\"text\": \"{}\"}}",
            esc(rule_description(rule))
        );
        s.push('}');
    }
    s.push_str("\n          ]\n        }\n      },\n");
    s.push_str("      \"results\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n        {\n");
        let _ = writeln!(s, "          \"ruleId\": \"{}\",", esc(v.rule));
        let _ = writeln!(s, "          \"level\": \"error\",");
        let _ = writeln!(
            s,
            "          \"message\": {{\"text\": \"{}\"}},",
            esc(&v.message)
        );
        s.push_str("          \"locations\": [{\"physicalLocation\": {");
        let _ = write!(
            s,
            "\"artifactLocation\": {{\"uri\": \"{}\"}}, ",
            esc(&v.file)
        );
        let _ = write!(s, "\"region\": {{\"startLine\": {}}}", v.line);
        s.push_str("}}]\n        }");
    }
    if !violations.is_empty() {
        s.push_str("\n      ");
    }
    s.push_str("]\n    }\n  ]\n}\n");
    s
}

/// One-line human diagnostic: `rule file:line: message`.
pub fn human_line(v: &Violation) -> String {
    format!(
        "[{}] {}:{}: {}\n    {}",
        v.rule, v.file, v.line, v.message, v.snippet
    )
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RULE_STDOUT;

    fn sample() -> Violation {
        Violation {
            rule: RULE_STDOUT,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            snippet: "println!(\"hi\\there\")".into(),
            message: "no \"stdout\"".into(),
        }
    }

    #[test]
    fn json_escapes_and_counts() {
        let json = to_json(&[sample()], 10, 0, &ClosureMetrics::default());
        assert!(json.contains("\"version\": 2"));
        assert!(json.contains("\"violation_count\": 1"));
        assert!(json.contains("\\\"hi\\\\there\\\""));
        assert!(json.contains("\"files_scanned\": 10"));
        assert!(json.contains("\"stdout-purity\": 1"));
        assert!(json.contains("\"alloc-in-hot-path\": 0"));
        let empty = to_json(&[], 2, 1, &ClosureMetrics::default());
        assert!(empty.contains("\"violations\": []"));
        assert!(empty.contains("\"baseline_suppressed\": 1"));
        assert!(empty.contains("\"v2_over_v1_ratio\": 0.000"));
    }

    #[test]
    fn sarif_has_schema_rules_and_result_locations() {
        let sarif = to_sarif(&[sample()]);
        assert!(sarif.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"name\": \"an2-lint\""));
        for rule in ALL_RULES {
            assert!(sarif.contains(&format!("\"id\": \"{rule}\"")), "{rule}");
        }
        assert!(sarif.contains("\"ruleId\": \"stdout-purity\""));
        assert!(sarif.contains("\"uri\": \"crates/x/src/lib.rs\""));
        assert!(sarif.contains("\"startLine\": 3"));
        let empty = to_sarif(&[]);
        assert!(empty.contains("\"results\": []"));
    }
}
