//! Machine-readable report (`results/LINT.json`) and human diagnostics.

use crate::rules::Violation;
use std::fmt::Write as _;

/// Serializes the lint outcome as the `results/LINT.json` document
/// (version 1 schema): rule, file, line, snippet and message per violation,
/// plus scan counters. Violations must already be sorted; the writer
/// preserves order so the report is byte-stable for a given tree.
pub fn to_json(violations: &[Violation], files_scanned: usize, baseline_suppressed: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"version\": 1,");
    let _ = writeln!(s, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(s, "  \"baseline_suppressed\": {baseline_suppressed},");
    let _ = writeln!(s, "  \"violation_count\": {},", violations.len());
    s.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        let _ = write!(s, "\"rule\": \"{}\", ", esc(v.rule));
        let _ = write!(s, "\"file\": \"{}\", ", esc(&v.file));
        let _ = write!(s, "\"line\": {}, ", v.line);
        let _ = write!(s, "\"snippet\": \"{}\", ", esc(&v.snippet));
        let _ = write!(s, "\"message\": \"{}\"", esc(&v.message));
        s.push('}');
    }
    if !violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// One-line human diagnostic: `rule file:line: message`.
pub fn human_line(v: &Violation) -> String {
    format!(
        "[{}] {}:{}: {}\n    {}",
        v.rule, v.file, v.line, v.message, v.snippet
    )
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RULE_STDOUT;

    #[test]
    fn json_escapes_and_counts() {
        let v = Violation {
            rule: RULE_STDOUT,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            snippet: "println!(\"hi\\there\")".into(),
            message: "no \"stdout\"".into(),
        };
        let json = to_json(&[v], 10, 0);
        assert!(json.contains("\"violation_count\": 1"));
        assert!(json.contains("\\\"hi\\\\there\\\""));
        assert!(json.contains("\"files_scanned\": 10"));
        let empty = to_json(&[], 2, 1);
        assert!(empty.contains("\"violations\": []"));
        assert!(empty.contains("\"baseline_suppressed\": 1"));
    }
}
