//! A minimal hand-rolled Rust lexer.
//!
//! The rule engine needs to know, for every interesting identifier, whether
//! it is *code* — a `println!` inside a string literal or a doc comment must
//! never trip the stdout-purity rule, and `// SAFETY:` rationales live in
//! comments that a token stream would otherwise discard. A grep cannot make
//! that distinction; this lexer exists precisely to make it.
//!
//! It is deliberately lossy about everything the rules do not need: numeric
//! literal values, multi-character operators (`::` is two `:` tokens) and
//! lifetimes all collapse into coarse token kinds. What it is *not* lossy
//! about is structure: comments (line, block, nested block), string literals
//! (cooked, raw `r#"…"#`, byte, byte-raw), char literals versus lifetimes,
//! and source line numbers are all tracked exactly.

/// Kind of a significant (non-trivia) token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword; the text is kept.
    Ident,
    /// A single punctuation character.
    Punct(char),
    /// Any literal: string, raw string, byte string, char, number, lifetime.
    Lit,
}

/// One significant token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What the token is.
    pub kind: TokKind,
    /// Identifier text; empty for punctuation and literals.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// A comment (line or block) with the lines it spans.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the `//` or `/*`.
    pub line: u32,
    /// 1-based line of the comment's last character.
    pub end_line: u32,
    /// Full comment text including the delimiters.
    pub text: String,
}

/// Lexer output: the significant tokens and the comments, both in source
/// order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens (comments and whitespace removed).
    pub toks: Vec<Tok>,
    /// All comments, for annotation and `// SAFETY:` analysis.
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments. Malformed input (an unterminated
/// string, say) never panics: the lexer consumes to end of input and the
/// caller sees whatever tokens came before.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Lexed::default();

    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                i += 2;
                let mut depth = 1u32;
                while i < n && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'"' => {
                let start_line = line;
                i = consume_cooked_string(b, i, &mut line);
                out.toks.push(lit(start_line));
            }
            b'\'' => {
                let start_line = line;
                i = consume_quote(b, i, &mut line);
                out.toks.push(lit(start_line));
            }
            b'r' | b'b' if starts_string_like(b, i) => {
                let start_line = line;
                i = consume_string_like(b, i, &mut line);
                out.toks.push(lit(start_line));
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident_char(b[i]) {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                i += 1;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                // A fraction part: `1.5`, but not the range `0..n` or the
                // field access `tuple.0` (handled as separate tokens).
                if i + 1 < n && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                out.toks.push(lit(line));
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct(c as char),
                    text: String::new(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn lit(line: u32) -> Tok {
    Tok {
        kind: TokKind::Lit,
        text: String::new(),
        line,
    }
}

/// Does position `i` (at `r` or `b`) begin a raw/byte string or byte char?
fn starts_string_like(b: &[u8], i: usize) -> bool {
    let n = b.len();
    match b[i] {
        b'r' => {
            // r"…" or r#…"
            let mut j = i + 1;
            while j < n && b[j] == b'#' {
                j += 1;
            }
            j < n && b[j] == b'"' && (j > i + 1 || b[i + 1] == b'"')
        }
        b'b' => {
            if i + 1 >= n {
                return false;
            }
            match b[i + 1] {
                b'"' | b'\'' => true,
                b'r' => {
                    let mut j = i + 2;
                    while j < n && b[j] == b'#' {
                        j += 1;
                    }
                    j < n && b[j] == b'"'
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// Consumes a `r…`/`b…` string-like literal starting at `i`; returns the
/// index just past it.
fn consume_string_like(b: &[u8], i: usize, line: &mut u32) -> usize {
    let n = b.len();
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < n && b[j] == b'\'' {
        return consume_quote(b, j, line);
    }
    if j < n && b[j] == b'r' {
        j += 1;
        let mut hashes = 0usize;
        while j < n && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < n && b[j] == b'"' {
            j += 1;
            // Scan for `"` followed by `hashes` hash marks.
            while j < n {
                if b[j] == b'\n' {
                    *line += 1;
                    j += 1;
                } else if b[j] == b'"' && b[j + 1..].iter().take(hashes).filter(|&&h| h == b'#').count() == hashes {
                    return j + 1 + hashes;
                } else {
                    j += 1;
                }
            }
        }
        return j;
    }
    consume_cooked_string(b, j, line)
}

/// Consumes a cooked string starting at the opening `"` at `i`.
fn consume_cooked_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let n = b.len();
    let mut j = i + 1;
    while j < n {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Consumes a `'`-introduced token at `i`: a char literal or a lifetime.
fn consume_quote(b: &[u8], i: usize, line: &mut u32) -> usize {
    let n = b.len();
    let j = i + 1;
    if j >= n {
        return n;
    }
    if b[j] == b'\\' {
        // Escaped char literal: scan to the closing quote.
        let mut k = j + 2;
        while k < n && b[k] != b'\'' {
            if b[k] == b'\n' {
                *line += 1;
            }
            k += 1;
        }
        return (k + 1).min(n);
    }
    if is_ident_start(b[j]) {
        let mut k = j;
        while k < n && is_ident_char(b[k]) {
            k += 1;
        }
        if k < n && b[k] == b'\'' {
            return k + 1; // 'a'
        }
        return k; // 'lifetime
    }
    // A punctuation char literal like '(' — or a stray quote.
    if j + 1 < n && b[j + 1] == b'\'' {
        return j + 2;
    }
    i + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r###"
            // println! in a comment
            /* vec! in /* a nested */ block */
            let s = "println!(\"not code\")";
            let r = r#"dbg! "quoted" stuff"#;
            let b = b"format!";
            eprintln!("ok");
        "###;
        let ids = idents(src);
        assert!(ids.contains(&"eprintln".to_string()));
        assert!(!ids.contains(&"println".to_string()));
        assert!(!ids.contains(&"vec".to_string()));
        assert!(!ids.contains(&"dbg".to_string()));
        assert!(!ids.contains(&"format".to_string()));
    }

    #[test]
    fn char_literals_versus_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let nl = '\\n'; }";
        let ids = idents(src);
        // Lifetimes and char literals both collapse into opaque `Lit`
        // tokens; the identifiers around them must survive untouched.
        assert_eq!(
            ids,
            ["fn", "f", "x", "str", "let", "c", "let", "q", "let", "nl"]
        );
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "a\n/* two\nlines */\nb\n\"str\ning\"\nc";
        let toks = lex(src).toks;
        let a = toks.iter().find(|t| t.text == "a").unwrap();
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        let c = toks.iter().find(|t| t.text == "c").unwrap();
        assert_eq!((a.line, b.line, c.line), (1, 4, 7));
    }

    #[test]
    fn comment_spans_are_recorded() {
        let src = "x\n// one\n/* a\nb */\ny";
        let com = lex(src).comments;
        assert_eq!(com.len(), 2);
        assert_eq!((com[0].line, com[0].end_line), (2, 2));
        assert_eq!((com[1].line, com[1].end_line), (3, 4));
        assert!(com[1].text.contains("a\nb"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let src = "for i in 0..n { let x = 1.5e3; let y = t.0; }";
        let toks = lex(src);
        let dots = toks
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct('.'))
            .count();
        assert_eq!(dots, 3); // two from `..`, one from `t.0`
    }
}
