//! Linter configuration: which files the rules apply to and the committed
//! allowlists.
//!
//! Two layers compose a [`Config`]:
//!
//! * **Built-in scope** ([`Config::base`]) — which crates are deterministic,
//!   which `an2-sched` modules form the scheduler hot path, which paths may
//!   write to stdout. These encode *architecture*, so they live in code
//!   where changing them shows up in review as a linter change.
//! * **Committed allowlist files** ([`Config::load`]) — `lint/…​.txt` at the
//!   workspace root: the unsafe-file allowlist, the dependency allowlist and
//!   the violation baseline. These encode *inventory*, so they live in data
//!   files a PR can extend without touching the linter.

use std::path::Path;

/// The PR 5 per-file hot scope, kept verbatim for the v1 closure metric.
/// Do not extend this list — new hot files go in [`Config::base`]'s
/// `hot_files`; this one exists so the v2/v1 ratio stays meaningful.
const LEGACY_HOT_FILES: [&str; 14] = [
    "crates/an2-sched/src/pim.rs",
    "crates/an2-sched/src/islip.rs",
    "crates/an2-sched/src/stat.rs",
    "crates/an2-sched/src/maximum.rs",
    "crates/an2-sched/src/matching.rs",
    "crates/an2-sched/src/port.rs",
    "crates/an2-sched/src/requests.rs",
    "crates/an2-sched/src/rng.rs",
    "crates/an2-sched/src/scheduler.rs",
    "crates/an2-sim/src/batch.rs",
    "crates/an2-net/src/shard.rs",
    "crates/an2-sim/src/fault.rs",
    "crates/an2-sched/src/mwm.rs",
    "crates/an2-sched/src/serenade.rs",
];

/// A violation identity as stored in the baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// Full linter configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Files whose `fn`s participate in the hot-path allocation closure.
    pub hot_files: Vec<String>,
    /// The PR 5 hot-file list, frozen. The v1 closure metric in
    /// `results/LINT.json` is computed over exactly these files (seeds and
    /// traversal domain both), so the v2/v1 ratio measures what the
    /// cross-crate closure actually gained.
    pub legacy_hot_files: Vec<String>,
    /// Function names that seed the hot-path closure in every hot file.
    pub hot_seed_fns: Vec<String>,
    /// Path prefixes the hot closure may traverse into. Name-resolved call
    /// edges stop at this boundary: vendored test stand-ins (criterion,
    /// proptest), integration tests and examples share fn names with
    /// product code but never run on the per-slot path.
    pub hot_domain_prefixes: Vec<String>,
    /// Crate directory prefixes whose code must be deterministic.
    pub det_prefixes: Vec<String>,
    /// Files exempt from the determinism rule (the deterministic-hasher
    /// aliases themselves must name `HashMap`).
    pub det_exempt_files: Vec<String>,
    /// Files allowed to contain `unsafe` (each occurrence still needs a
    /// `// SAFETY:` rationale).
    pub unsafe_allowlist: Vec<String>,
    /// Path prefixes allowed to write to stdout (beyond `src/main.rs` and
    /// `src/bin/` targets, which are always allowed).
    pub stdout_exempt_prefixes: Vec<String>,
    /// Crate names allowed to appear in `Cargo.lock`.
    pub deps_allowlist: Vec<String>,
    /// Path prefixes the walker skips entirely (fixtures are raw lint
    /// inputs, not workspace code).
    pub walk_skip_prefixes: Vec<String>,
    /// Known violations tolerated until they are fixed (normally empty).
    pub baseline: Vec<BaselineEntry>,
}

impl Config {
    /// The built-in scope with empty allowlists; tests extend it by hand.
    pub fn base() -> Self {
        Self {
            hot_files: [
                // The PR 1 zero-allocation schedulers…
                "crates/an2-sched/src/pim.rs",
                "crates/an2-sched/src/islip.rs",
                "crates/an2-sched/src/stat.rs",
                "crates/an2-sched/src/maximum.rs",
                // …and the support modules their slot loops run through.
                // `check.rs` is deliberately absent: the invariant-checking
                // observer is allowed to allocate (it is compiled out of
                // release builds and never sits on the simulator's per-slot
                // path).
                "crates/an2-sched/src/matching.rs",
                "crates/an2-sched/src/port.rs",
                "crates/an2-sched/src/requests.rs",
                "crates/an2-sched/src/rng.rs",
                "crates/an2-sched/src/scheduler.rs",
                // The PR 6 batched engines: the single-switch SoA slot
                // loop and the sharded network's per-switch step. Their
                // `// an2-lint: hot` slot functions must stay
                // allocation-free; the spill/grow paths are annotated
                // cold by design (amortized, off the steady-state path).
                "crates/an2-sim/src/batch.rs",
                "crates/an2-net/src/shard.rs",
                // The PR 7 chaos engine: fault-plan delivery runs inside
                // the faulted slot loops; the log's record paths are cold
                // (they grow the forensic event list, not the slot loop).
                "crates/an2-sim/src/fault.rs",
                // The queue-aware schedulers: MWM's augmenting-path solve
                // and SERENADE's propose/merge both run per slot, with the
                // Q-matrix observe feed on the same loop.
                "crates/an2-sched/src/mwm.rs",
                "crates/an2-sched/src/serenade.rs",
                // PR 10: the per-slot code the old closure missed — the
                // VOQ buffer's push/pop/observe feed and the crossbar
                // switch's slot loop both run on every cell time.
                "crates/an2-sim/src/voq.rs",
                "crates/an2-sim/src/switch.rs",
            ]
            .map(String::from)
            .to_vec(),
            legacy_hot_files: LEGACY_HOT_FILES.map(String::from).to_vec(),
            hot_seed_fns: vec!["schedule".to_string()],
            hot_domain_prefixes: [
                "crates/an2-sched/",
                "crates/an2-sim/",
                "crates/an2-net/",
                "crates/an2-task/",
            ]
            .map(String::from)
            .to_vec(),
            det_prefixes: [
                "crates/an2-sched/",
                "crates/an2-sim/",
                "crates/an2-net/",
                "crates/an2-task/",
            ]
            .map(String::from)
            .to_vec(),
            det_exempt_files: vec!["crates/an2-sched/src/det.rs".to_string()],
            unsafe_allowlist: Vec::new(),
            stdout_exempt_prefixes: [
                // The vendored offline stand-ins report to stdout by design.
                "crates/criterion/",
                "crates/proptest/",
                // Runnable demos print their figures.
                "examples/",
            ]
            .map(String::from)
            .to_vec(),
            deps_allowlist: Vec::new(),
            walk_skip_prefixes: vec!["crates/an2-lint/tests/fixtures/".to_string()],
            baseline: Vec::new(),
        }
    }

    /// Loads the full configuration for the workspace rooted at `root`,
    /// reading the committed `lint/` allowlist files.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unreadable file if any allowlist is
    /// missing — a silently absent allowlist would make the unsafe and
    /// dependency rules vacuously reject everything or nothing.
    pub fn load(root: &Path) -> Result<Self, String> {
        let mut cfg = Self::base();
        cfg.unsafe_allowlist = read_list(&root.join("lint/unsafe-allowlist.txt"))?;
        cfg.deps_allowlist = read_list(&root.join("lint/deps-allowlist.txt"))?;
        cfg.baseline = read_list(&root.join("lint/baseline.txt"))?
            .iter()
            .filter_map(|l| parse_baseline_line(l))
            .collect();
        Ok(cfg)
    }
}

/// Reads a `lint/*.txt` allowlist: one entry per line, `#` comments and
/// blank lines ignored.
fn read_list(path: &Path) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect())
}

/// Parses one baseline line: `rule<TAB>file<TAB>line`.
fn parse_baseline_line(line: &str) -> Option<BaselineEntry> {
    let mut parts = line.split('\t');
    let rule = parts.next()?.to_string();
    let file = parts.next()?.to_string();
    let line = parts.next()?.parse().ok()?;
    Some(BaselineEntry { rule, file, line })
}

/// Formats a baseline entry for `--fix-baseline`.
pub fn baseline_line(rule: &str, file: &str, line: u32) -> String {
    format!("{rule}\t{file}\t{line}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_lines_round_trip() {
        let line = baseline_line("determinism", "crates/x/src/lib.rs", 42);
        let e = parse_baseline_line(&line).unwrap();
        assert_eq!(e.rule, "determinism");
        assert_eq!(e.file, "crates/x/src/lib.rs");
        assert_eq!(e.line, 42);
        assert!(parse_baseline_line("malformed").is_none());
    }
}
