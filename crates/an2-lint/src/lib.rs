//! `an2-lint` — the workspace invariant linter.
//!
//! PRs 1–4 established the AN2 reproduction's hard invariants *dynamically*:
//! a zero-allocation scheduler hot path (counting-allocator tests),
//! bit-identical output at any `--threads N` (pinned digests), an
//! unsafe-free workspace outside one audited BMI2 intrinsic, and stdout
//! byte-identity under `--check`. Dynamic proof is necessary but late: a
//! `Vec::new()` slipped into `pim.rs` only fails once a test happens to
//! execute it. This crate proves the same rules **at the source level**,
//! before anything runs, with a hand-rolled Rust lexer (no external
//! dependencies — the build environment is offline) and a token-stream rule
//! engine:
//!
//! 1. [`rules::RULE_HOT_ALLOC`] — no allocating calls in functions reachable
//!    from `schedule()`, via the cross-crate call-graph closure in
//!    [`closure`] seeded by `fn schedule` and `// an2-lint: hot`
//!    annotations.
//! 2. [`rules::RULE_PANIC`] — no `unwrap`/`expect`/panic-family macros/raw
//!    `x[i]` indexing in hot fns: a degraded-input slot must degrade, not
//!    abort (`debug_assert!` stays legal — it compiles out of release).
//! 3. [`rules::RULE_OVERFLOW`] — counter arithmetic in hot fns must be
//!    `wrapping_*`/`saturating_*`/`checked_*` or justified, so debug
//!    (abort-on-overflow) and release (silent wrap) builds agree.
//! 4. [`rules::RULE_DETERMINISM`] — no wall clocks, random-state hash
//!    collections, env reads or foreign RNGs in the deterministic crates.
//! 5. [`rules::RULE_UNSAFE`] — `unsafe` only in files listed in
//!    `lint/unsafe-allowlist.txt`, each occurrence with a `// SAFETY:`
//!    rationale.
//! 6. [`rules::RULE_STDOUT`] — `println!`/`print!`/`dbg!` only in bin
//!    targets (protects the `--check` byte-identity contract).
//! 7. [`rules::RULE_DEPS`] — `Cargo.lock` may only contain crates listed in
//!    `lint/deps-allowlist.txt`.
//!
//! Run with `cargo run -p an2-lint`; the outcome is also written to
//! `results/LINT.json` (v2: per-rule counts plus closure-size metrics).
//! `--sarif <path>` additionally emits SARIF 2.1.0 for PR-diff annotation;
//! `--dump-closure` prints every hot fn with the file and line it lives at.
//! `--fix-baseline` records current violations in `lint/baseline.txt` so a
//! rule can be introduced before its last violations are purged (the
//! committed baseline is empty and should stay that way).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyze;
pub mod closure;
pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

pub use analyze::SourceFile;
pub use config::{BaselineEntry, Config};
pub use rules::{lint_files, lint_files_full, lint_lockfile, ClosureMetrics, LintOutcome, Violation};

use std::io;
use std::path::{Path, PathBuf};

/// Collects every workspace `.rs` file under `root`, as [`SourceFile`]s
/// with sorted, `/`-separated workspace-relative paths. `target/`, hidden
/// directories and the configured skip prefixes are excluded.
///
/// # Errors
///
/// Propagates I/O errors from directory walking or file reads.
pub fn collect_files(root: &Path, cfg: &Config) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk(root, root, cfg, &mut paths)?;
    paths.sort();
    paths
        .into_iter()
        .map(|rel| {
            let src = std::fs::read_to_string(root.join(&rel))?;
            Ok(SourceFile { path: rel, src })
        })
        .collect()
}

fn walk(root: &Path, dir: &Path, cfg: &Config, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let rel = rel_path(root, &path);
        if path.is_dir() {
            if name.starts_with('.') || name == "target" {
                continue;
            }
            let rel_dir = format!("{rel}/");
            if cfg
                .walk_skip_prefixes
                .iter()
                .any(|p| rel_dir.starts_with(p.as_str()))
            {
                continue;
            }
            walk(root, &path, cfg, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Splits `violations` into (kept, baseline-suppressed-count) against the
/// committed baseline. Matching is by (rule, file, line).
pub fn apply_baseline(
    violations: Vec<Violation>,
    baseline: &[BaselineEntry],
) -> (Vec<Violation>, usize) {
    let mut suppressed = 0usize;
    let kept = violations
        .into_iter()
        .filter(|v| {
            let hit = baseline
                .iter()
                .any(|b| b.rule == v.rule && b.file == v.file && b.line == v.line);
            if hit {
                suppressed += 1;
            }
            !hit
        })
        .collect();
    (kept, suppressed)
}

/// The workspace root this binary was built in: `crates/an2-lint/../..`.
pub fn default_root() -> PathBuf {
    let raw = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    raw.canonicalize().unwrap_or(raw)
}
