//! Cross-crate integration: the scheduler/fabric separation of concerns.
//!
//! §2.2: "Our scheduling algorithm assumes that data can be forwarded
//! through the switch with no internal blocking; this can be implemented
//! using either a crossbar or a batcher-banyan network." This test drives
//! PIM over live traffic and pushes *every slot's matching* through all
//! three fabrics: the crossbar and batcher-banyan must transport every
//! matching untouched, while the bare banyan — fed the very same
//! conflict-free matchings — drops cells to internal blocking, which is
//! exactly why it cannot substitute for a non-blocking fabric.

use an2::fabric::{Banyan, BatcherBanyan, Crossbar, Fabric};
use an2::sched::{Pim, Scheduler};
use an2::sim::switch::CrossbarSwitch;
use an2::sim::traffic::{RateMatrixTraffic, Traffic};
use an2::sim::SwitchModel;

#[test]
fn pim_matchings_traverse_non_blocking_fabrics() {
    let n = 16;
    let crossbar = Crossbar::new(n);
    let batcher_banyan = BatcherBanyan::new(n);
    let banyan = Banyan::new(n);

    let mut pim = Pim::new(n, 5);
    let mut switch = CrossbarSwitch::new(Pim::new(n, 5));
    let mut traffic = RateMatrixTraffic::uniform(n, 0.9, 6);
    let mut buf = Vec::new();

    let mut banyan_blocked = 0usize;
    let mut total_cells = 0usize;
    for slot in 0..2_000u64 {
        buf.clear();
        traffic.arrivals(slot, &mut buf);
        switch.step(&buf);
        // Re-derive the same matching PIM would compute on this state.
        let requests = switch.buffers().requests();
        let matching = pim.schedule(requests);
        total_cells += matching.len();

        let via_crossbar = crossbar.route_matching(&matching);
        assert!(via_crossbar.is_clean(), "crossbar blocked at slot {slot}");

        let via_bb = batcher_banyan.route_matching(&matching);
        assert!(
            via_bb.is_clean(),
            "batcher-banyan blocked at slot {slot}: {:?}",
            via_bb.blocked
        );
        assert_eq!(via_bb.delivered.len(), matching.len());

        banyan_blocked += banyan.route_matching(&matching).blocked.len();
    }
    // The bare banyan loses a meaningful share of the same traffic.
    assert!(total_cells > 10_000, "simulation produced little traffic");
    let loss = banyan_blocked as f64 / total_cells as f64;
    assert!(
        loss > 0.02,
        "expected visible internal blocking on the bare banyan, got {loss}"
    );
}

#[test]
fn hardware_cost_ordering_matches_the_paper() {
    // §2.2 weighs O(N^2) crossbar against O(N log^2 N) batcher-banyan:
    // for moderate N the crossbar is comparable or cheaper, which is one
    // reason AN2 chose it.
    for n in [8usize, 16, 64] {
        let xbar = Crossbar::new(n).crosspoints();
        let bb = BatcherBanyan::new(n).elements();
        // Elements are 2x2 comparators/switches; count crosspoints of a
        // 2x2 as 4 for a crude apples-to-apples figure.
        let bb_crosspoints = bb * 4;
        if n <= 16 {
            assert!(
                xbar <= bb_crosspoints,
                "n={n}: crossbar {xbar} vs batcher-banyan {bb_crosspoints}"
            );
        } else {
            // By n = 64 the asymptotics favor the multistage fabric.
            assert!(xbar > bb_crosspoints, "n={n}");
        }
    }
}
