//! End-to-end checks of the paper's headline claims, exercised through
//! the public facade (`an2`) exactly as a downstream user would.

use an2::net::cbr::{simulate_cbr_chain, CbrChainConfig};
use an2::net::clock::ClockPolicy;
use an2::net::fairness::figure_9_shares;
use an2::sched::fifo::FifoPriority;
use an2::sched::stat::{reservable_fraction, ReservationTable, StatisticalMatcher};
use an2::sched::{AcceptPolicy, IterationLimit, Pim, RequestMatrix, Scheduler};
use an2::sim::fifo_switch::FifoSwitch;
use an2::sim::output_queued::OutputQueuedSwitch;
use an2::sim::sim::{simulate, SimConfig};
use an2::sim::switch::CrossbarSwitch;
use an2::sim::traffic::RateMatrixTraffic;
use an2::sim::units::LinkRate;

const CFG: SimConfig = SimConfig {
    warmup_slots: 10_000,
    measure_slots: 50_000,
};

/// §3.2 / Table 1: four iterations all but complete the match.
#[test]
fn four_iterations_suffice_on_dense_requests() {
    use an2::sched::rng::Xoshiro256;
    let mut gen = Xoshiro256::seed_from(1);
    let mut pim4 = Pim::new(16, 2);
    let mut pim_inf = Pim::with_options(
        16,
        2,
        IterationLimit::ToCompletion,
        AcceptPolicy::Random,
    );
    let (mut got4, mut got_inf) = (0u64, 0u64);
    for _ in 0..2_000 {
        let reqs = RequestMatrix::random(16, 1.0, &mut gen);
        got4 += pim4.schedule(&reqs).len() as u64;
        got_inf += pim_inf.schedule(&reqs).len() as u64;
    }
    let ratio = got4 as f64 / got_inf as f64;
    assert!(ratio > 0.998, "PIM(4) found only {ratio} of completed matches");
}

/// §3.5 / Figure 3: at high uniform load, PIM keeps throughput where FIFO
/// has long since saturated, and stays within a small factor of the
/// output-queued ideal.
#[test]
fn pim_close_to_output_queueing_fifo_far() {
    let n = 16;
    let load = 0.9;
    let mut pim = CrossbarSwitch::new(Pim::new(n, 3));
    let mut t = RateMatrixTraffic::uniform(n, load, 4);
    let pim_rep = simulate(&mut pim, &mut t, CFG);

    let mut oq = OutputQueuedSwitch::new(n);
    let mut t = RateMatrixTraffic::uniform(n, load, 4);
    let oq_rep = simulate(&mut oq, &mut t, CFG);

    let mut fifo = FifoSwitch::new(n, FifoPriority::Random, 5);
    let mut t = RateMatrixTraffic::uniform(n, load, 4);
    let fifo_rep = simulate(&mut fifo, &mut t, CFG);

    // Shape: OQ <= PIM << FIFO.
    assert!(pim_rep.delay.mean() >= oq_rep.delay.mean() * 0.9);
    assert!(pim_rep.delay.mean() <= oq_rep.delay.mean() * 6.0);
    assert!(fifo_rep.delay.mean() > pim_rep.delay.mean() * 20.0);
    // PIM delivers the offered load; FIFO cannot.
    assert!(pim_rep.mean_output_utilization() > 0.88);
    assert!(fifo_rep.mean_output_utilization() < 0.68);
}

/// §3.5: "less than 13 μsec" mean forwarding delay at 95% load.
#[test]
fn thirteen_microseconds_at_95_percent_load() {
    let mut sw = CrossbarSwitch::new(Pim::new(16, 7));
    let mut t = RateMatrixTraffic::uniform(16, 0.95, 8);
    let rep = simulate(&mut sw, &mut t, CFG);
    let us = LinkRate::an2().slots_to_micros(rep.delay.mean());
    assert!(us < 13.0, "mean delay {us:.2} us");
}

/// §2.4 / Karol: FIFO saturates near 58-63% under uniform traffic.
#[test]
fn fifo_saturation_throughput() {
    let mut sw = FifoSwitch::new(16, FifoPriority::Random, 9);
    let mut t = RateMatrixTraffic::uniform(16, 1.0, 10);
    let rep = simulate(&mut sw, &mut t, CFG);
    let util = rep.mean_output_utilization();
    assert!((0.53..0.68).contains(&util), "FIFO saturation {util}");
}

/// §5 / Appendix C: two-round statistical matching delivers ≈72% of the
/// reserved rate, in any allocation pattern.
#[test]
fn statistical_matching_72_percent() {
    let x = 128;
    let n = 4;
    // An asymmetric pattern: a heavy diagonal plus light off-diagonals.
    let table = ReservationTable::from_fn(n, x, |i, j| {
        if i == j {
            x / 2
        } else {
            x / (2 * (n - 1))
        }
    });
    let mut sm = StatisticalMatcher::new(table, 11);
    let slots = 60_000u64;
    let matched: u64 = (0..slots).map(|_| sm.next_match().len() as u64).sum();
    let rate = matched as f64 / (slots as f64 * n as f64);
    assert!(
        rate > reservable_fraction() - 0.02,
        "delivered {rate}, theory {}",
        reservable_fraction()
    );
}

/// §4 / Appendix B: CBR bounds hold across an adversarially clocked path.
#[test]
fn cbr_bounds_hold_end_to_end() {
    let mut cfg = CbrChainConfig {
        hops: 6,
        cells_per_frame: 3,
        switch_frame_slots: 200,
        controller_stuffing: 0,
        slot_time: 1.0,
        tolerance: 0.02,
        link_latency: 5.0,
        frames: 600,
    };
    cfg.controller_stuffing = cfg.min_stuffing();
    for seed in 0..5 {
        let rep = simulate_cbr_chain(
            &cfg,
            ClockPolicy::SlowThenFast {
                slow_frames: 30,
                fast_frames: 30,
            },
            ClockPolicy::Random,
            seed,
        )
        .unwrap();
        assert!(rep.within_bounds(), "seed {seed}: {rep}");
    }
}

/// §5.1 / Figure 9: merge depth determines bandwidth share.
#[test]
fn chain_shares_follow_merge_depth() {
    let s = figure_9_shares(21, 4_000, 30_000);
    assert!(s.shares[0] > s.shares[1] && s.shares[1] > s.shares[2]);
    assert!((s.shares[0] - 0.5).abs() < 0.05);
    assert!(s.jain < 0.8);
}

/// §3.4: PIM does not starve any connection — every requested pair is
/// eventually served, even the Figure 8 starved one.
#[test]
fn pim_never_starves() {
    let reqs = RequestMatrix::from_pairs(
        4,
        [(0, 0), (1, 0), (2, 0), (3, 0), (3, 1), (3, 2), (3, 3)],
    );
    let mut pim = Pim::new(4, 33);
    let mut served = std::collections::HashSet::new();
    for _ in 0..10_000 {
        for (i, j) in pim.schedule(&reqs).pairs() {
            served.insert((i.index(), j.index()));
        }
    }
    for (i, j) in reqs.pairs() {
        assert!(
            served.contains(&(i.index(), j.index())),
            "connection ({i},{j}) was starved"
        );
    }
}
