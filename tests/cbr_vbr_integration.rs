//! Cross-crate integration: CBR frame schedules and VBR gap-filling on one
//! switch (§4: "VBR cells are transmitted during slots not used by CBR
//! cells. In addition, VBR cells can use an allocated slot if no cell from
//! the scheduled flow is present at the switch.").
//!
//! The test drives a switch slot-by-slot: each slot takes the reserved
//! matching from the frame schedule, keeps only the reserved pairs that
//! actually have a queued CBR cell, and lets PIM fill every remaining port
//! with datagram traffic via `schedule_from`.

use an2::sched::rng::{SelectRng, Xoshiro256};
use an2::sched::{
    AcceptPolicy, FrameSchedule, InputPort, IterationLimit, Matching, OutputPort, Pim,
    RequestMatrix,
};

struct PairQueues {
    n: usize,
    queued: Vec<Vec<u64>>, // queued[i][j] = cells waiting
}

impl PairQueues {
    fn new(n: usize) -> Self {
        Self {
            n,
            queued: vec![vec![0; n]; n],
        }
    }

    fn requests(&self) -> RequestMatrix {
        RequestMatrix::from_fn(self.n, |i, j| self.queued[i][j] > 0)
    }
}

#[test]
fn vbr_fills_slots_unused_by_cbr() {
    let n = 4;
    let frame = 8;
    // CBR: the diagonal reserves half of every link.
    let mut fs = FrameSchedule::new(n, frame);
    for p in 0..n {
        fs.reserve(InputPort::new(p), OutputPort::new(p), frame / 2)
            .unwrap();
    }
    let mut pim = Pim::with_options(n, 5, IterationLimit::ToCompletion, AcceptPolicy::Random);
    let mut rng = Xoshiro256::seed_from(6);

    let mut cbr = PairQueues::new(n);
    let mut vbr = PairQueues::new(n);
    let mut cbr_sent = 0u64;
    let mut vbr_sent = 0u64;
    let slots = 40_000u64;
    for t in 0..slots {
        // Arrivals: CBR diagonal flows at exactly their reserved rate
        // (half a cell per slot); VBR everywhere at a saturating rate.
        for p in 0..n {
            if rng.bernoulli(0.5) {
                cbr.queued[p][p] += 1;
            }
            let j = rng.index(n);
            vbr.queued[p][j] += 1;
        }
        // Reserved matching for this slot, minus reserved pairs with no
        // CBR cell present (their ports return to the datagram pool).
        let reserved = fs.slot((t % frame as u64) as usize);
        let mut initial = Matching::new(n);
        for (i, j) in reserved.pairs() {
            if cbr.queued[i.index()][j.index()] > 0 {
                initial.pair(i, j).unwrap();
            }
        }
        let cbr_pairs: Vec<_> = initial.pairs().collect();
        let m = pim.schedule_from(&vbr.requests(), initial);
        for (i, j) in m.pairs() {
            if cbr_pairs.contains(&(i, j)) {
                cbr.queued[i.index()][j.index()] -= 1;
                cbr_sent += 1;
            } else {
                vbr.queued[i.index()][j.index()] -= 1;
                vbr_sent += 1;
            }
        }
    }
    // CBR got essentially its full reserved throughput (0.5 per port)...
    let cbr_rate = cbr_sent as f64 / (slots as f64 * n as f64);
    assert!((cbr_rate - 0.5).abs() < 0.02, "CBR rate {cbr_rate}");
    // ...and VBR filled nearly all remaining capacity.
    let total_rate = (cbr_sent + vbr_sent) as f64 / (slots as f64 * n as f64);
    assert!(total_rate > 0.97, "total utilization {total_rate}");
    // CBR queues stayed bounded: guaranteed service kept up with arrivals.
    let cbr_backlog: u64 = (0..n).map(|p| cbr.queued[p][p]).sum();
    assert!(cbr_backlog < 200, "CBR backlog {cbr_backlog}");
}

#[test]
fn cbr_unharmed_by_vbr_overload() {
    // VBR floods the switch; CBR must still receive its reserved rate
    // ("CBR performance guarantees are met no matter how high the load of
    // VBR traffic").
    let n = 4;
    let frame = 4;
    let mut fs = FrameSchedule::new(n, frame);
    // One CBR flow (0 -> 1) at a quarter of the link.
    fs.reserve(InputPort::new(0), OutputPort::new(1), 1).unwrap();
    let mut pim = Pim::with_options(n, 9, IterationLimit::ToCompletion, AcceptPolicy::Random);
    let mut rng = Xoshiro256::seed_from(10);

    let mut cbr_queue = 0u64;
    let mut cbr_sent = 0u64;
    let slots = 20_000u64;
    let mut vbr = PairQueues::new(n);
    // The application sends *up to* its reservation (0.25/slot reserved);
    // offering exactly the reserved rate would make the queue critically
    // loaded, so offer slightly under it.
    let cbr_offered = 0.22;
    for t in 0..slots {
        if rng.bernoulli(cbr_offered) {
            cbr_queue += 1;
        }
        for p in 0..n {
            let j = rng.index(n);
            vbr.queued[p][j] += 2; // overload: two VBR cells per input slot
        }
        let reserved = fs.slot((t % frame as u64) as usize);
        let mut initial = Matching::new(n);
        let cbr_here = reserved.output_of(InputPort::new(0)) == Some(OutputPort::new(1))
            && cbr_queue > 0;
        if cbr_here {
            initial.pair(InputPort::new(0), OutputPort::new(1)).unwrap();
        }
        let m = pim.schedule_from(&vbr.requests(), initial);
        for (i, j) in m.pairs() {
            if cbr_here && i.index() == 0 && j.index() == 1 {
                cbr_queue -= 1;
                cbr_sent += 1;
            } else {
                vbr.queued[i.index()][j.index()] -= 1;
            }
        }
    }
    let cbr_rate = cbr_sent as f64 / slots as f64;
    assert!(
        (cbr_rate - cbr_offered).abs() < 0.02,
        "CBR rate {cbr_rate} under VBR flood (offered {cbr_offered})"
    );
    assert!(cbr_queue < 100, "CBR backlog {cbr_queue} under VBR flood");
}
