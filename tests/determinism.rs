//! Reproducibility: every component is deterministic given its seed.
//!
//! The experiment harness quotes exact numbers in EXPERIMENTS.md; that is
//! only meaningful if a run is a pure function of its seeds. These tests
//! pin that property across the stack.

use an2::net::cbr::{simulate_cbr_chain, CbrChainConfig};
use an2::net::clock::ClockPolicy;
use an2::net::fairness::figure_9_shares;
use an2::sched::stat::{ReservationTable, StatisticalMatcher};
use an2::sched::{Pim, RequestMatrix, Scheduler};
use an2::sim::sim::{simulate, SimConfig};
use an2::sim::switch::CrossbarSwitch;
use an2::sim::traffic::RateMatrixTraffic;

#[test]
fn pim_is_seed_deterministic() {
    let reqs = RequestMatrix::from_fn(16, |i, j| (i * 7 + j) % 3 != 0);
    let run = || {
        let mut pim = Pim::new(16, 0xDEC0DE);
        (0..50).map(|_| pim.schedule(&reqs)).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
    // And a different seed genuinely differs somewhere.
    let mut other = Pim::new(16, 0xDEC0DF);
    let differs = (0..50).any(|k| other.schedule(&reqs) != run()[k]);
    assert!(differs, "different seeds should yield different schedules");
}

#[test]
fn simulation_reports_are_seed_deterministic() {
    let run = || {
        let mut sw = CrossbarSwitch::new(Pim::new(8, 11));
        let mut t = RateMatrixTraffic::uniform(8, 0.85, 12);
        let r = simulate(
            &mut sw,
            &mut t,
            SimConfig {
                warmup_slots: 1_000,
                measure_slots: 5_000,
            },
        );
        (
            r.departures,
            r.arrivals,
            r.delay.count(),
            r.delay.mean().to_bits(),
            r.departures_per_output.clone(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn statistical_matching_is_seed_deterministic() {
    let table = ReservationTable::from_fn(4, 64, |i, j| if i == j { 32 } else { 8 });
    let run = |seed: u64| {
        let mut sm = StatisticalMatcher::new(table.clone(), seed);
        (0..200).map(|_| sm.next_match()).collect::<Vec<_>>()
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

#[test]
fn cbr_chain_is_seed_deterministic() {
    let cfg = CbrChainConfig::example();
    let run = |seed: u64| {
        let r =
            simulate_cbr_chain(&cfg, ClockPolicy::Random, ClockPolicy::Random, seed).unwrap();
        (
            r.max_adjusted_latency.to_bits(),
            r.peak_buffer.clone(),
            r.throughput.to_bits(),
        )
    };
    assert_eq!(run(9), run(9));
}

#[test]
fn network_simulation_is_seed_deterministic() {
    let run = || {
        let s = figure_9_shares(77, 1_000, 5_000);
        s.shares.map(f64::to_bits)
    };
    assert_eq!(run(), run());
}
